/**
 * @file
 * yasim-analyze command-line driver (also installed as yasim-lint).
 *
 *     yasim-analyze [--root DIR] [--rules R1,R2] [--allow SUFFIX:RULE]
 *                   [--no-builtin-allowlist] [--list-rules]
 *                   [--sarif FILE] [--since REF] [--fix]
 *                   [--update-lock] [--lock FILE] [--baseline FILE]
 *                   [--serial] [paths...]
 *
 * Paths (subtrees relative to --root) default to src bench tests.
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error — an
 * unreadable file, a corrupt serialization.lock, or a corrupt
 * baseline is an operational failure, not a lint finding, and must
 * not be mistaken for one by CI.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze.hh"

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: yasim-analyze [--root DIR] [--rules R1,R2] "
          "[--allow SUFFIX:RULE]\n"
          "                     [--no-builtin-allowlist] "
          "[--list-rules] [--sarif FILE]\n"
          "                     [--since REF] [--fix] "
          "[--update-lock] [--lock FILE]\n"
          "                     [--baseline FILE] [--serial] "
          "[paths...]\n"
          "exit codes: 0 clean, 1 findings, 2 usage or I/O error\n";
    return status;
}

/**
 * Root-relative files that differ from @p ref (committed or working
 * tree) plus untracked files; empty with @p ok=false when git fails.
 */
std::vector<std::string>
changedFiles(const std::string &root, const std::string &ref, bool &ok)
{
    std::vector<std::string> files;
    ok = false;
    const std::string commands[] = {
        "git -C '" + root + "' diff --name-only '" + ref + "' 2>&1",
        "git -C '" + root +
            "' ls-files --others --exclude-standard 2>&1",
    };
    for (const std::string &command : commands) {
        FILE *pipe = popen(command.c_str(), "r");
        if (!pipe)
            return files;
        char buffer[4096];
        std::string output;
        while (fgets(buffer, sizeof buffer, pipe))
            output += buffer;
        if (pclose(pipe) != 0) {
            std::cerr << "yasim-analyze: git failed: " << output;
            return files;
        }
        size_t start = 0;
        while (start < output.size()) {
            size_t eol = output.find('\n', start);
            if (eol == std::string::npos)
                eol = output.size();
            if (eol > start)
                files.push_back(output.substr(start, eol - start));
            start = eol + 1;
        }
    }
    ok = true;
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace yasim::lint;

    std::string root = ".";
    AnalyzeOptions options;
    std::vector<std::string> paths;
    bool listRules = false;
    std::string sarifPath;
    std::string sinceRef;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "yasim-analyze: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--root") == 0) {
            root = value();
        } else if (std::strcmp(arg, "--rules") == 0) {
            std::string list = value();
            size_t start = 0;
            while (start <= list.size()) {
                size_t comma = list.find(',', start);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > start)
                    options.lint.rules.push_back(
                        list.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (std::strcmp(arg, "--allow") == 0) {
            options.lint.extraAllow.push_back(value());
        } else if (std::strcmp(arg, "--no-builtin-allowlist") == 0) {
            options.lint.builtinAllowlist = false;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            listRules = true;
        } else if (std::strcmp(arg, "--sarif") == 0) {
            sarifPath = value();
        } else if (std::strcmp(arg, "--since") == 0) {
            sinceRef = value();
        } else if (std::strcmp(arg, "--fix") == 0) {
            options.fix = true;
        } else if (std::strcmp(arg, "--update-lock") == 0) {
            options.updateLock = true;
        } else if (std::strcmp(arg, "--lock") == 0) {
            options.lockPath = value();
        } else if (std::strcmp(arg, "--baseline") == 0) {
            options.baselinePath = value();
        } else if (std::strcmp(arg, "--serial") == 0) {
            options.parallel = false;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            return usage(std::cout, 0);
        } else if (arg[0] == '-') {
            std::cerr << "yasim-analyze: unknown option " << arg
                      << "\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const RuleInfo &info : analyzeRuleCatalog())
            std::cout << info.id << "  " << info.summary << "\n";
        return 0;
    }

    if (!paths.empty())
        options.roots = paths;

    if (!sinceRef.empty()) {
        bool ok = false;
        options.sinceFiles = changedFiles(root, sinceRef, ok);
        if (!ok) {
            std::cerr << "yasim-analyze: --since " << sinceRef
                      << ": cannot determine changed files\n";
            return 2;
        }
        if (options.sinceFiles.empty()) {
            std::cerr << "yasim-analyze: clean (no files changed "
                         "since "
                      << sinceRef << ")\n";
            return 0;
        }
    }

    AnalyzeResult result = analyzeRepo(root, options);

    if (!sarifPath.empty()) {
        std::string report = sarifReport(result.findings);
        if (sarifPath == "-") {
            std::cout << report;
        } else {
            std::ofstream out(sarifPath, std::ios::binary);
            if (!out || !(out << report)) {
                std::cerr << "yasim-analyze: cannot write SARIF to "
                          << sarifPath << "\n";
                return 2;
            }
        }
    }

    bool ioError = false;
    for (const Finding &f : result.findings) {
        if (f.rule == "IO")
            ioError = true;
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
    }
    if (result.fixedIncludes > 0) {
        std::cerr << "yasim-analyze: removed " << result.fixedIncludes
                  << " unused include"
                  << (result.fixedIncludes == 1 ? "" : "s") << "\n";
    }
    if (ioError) {
        std::cerr << "yasim-analyze: I/O error (see findings marked "
                     "[IO])\n";
        return 2;
    }
    if (result.findings.empty()) {
        std::cerr << "yasim-analyze: clean (" << result.filesScanned
                  << " files)\n";
        return 0;
    }
    std::cerr << "yasim-analyze: " << result.findings.size()
              << " finding"
              << (result.findings.size() == 1 ? "" : "s") << "\n";
    return 1;
}
