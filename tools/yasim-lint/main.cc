/**
 * @file
 * yasim-lint command-line driver.
 *
 *     yasim-lint [--root DIR] [--rules D1,D2] [--allow SUFFIX:RULE]
 *                [--no-builtin-allowlist] [--list-rules] [paths...]
 *
 * Paths (files or directories) default to src bench tests, resolved
 * against --root (default: the current directory). Exit status: 0 on
 * a clean run, 1 when findings were reported, 2 on usage errors.
 */

#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: yasim-lint [--root DIR] [--rules R1,R2] "
          "[--allow SUFFIX:RULE]\n"
          "                  [--no-builtin-allowlist] [--list-rules] "
          "[paths...]\n";
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace yasim::lint;

    std::string root = ".";
    Options options;
    std::vector<std::string> paths;
    bool listRules = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "yasim-lint: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--root") == 0) {
            root = value();
        } else if (std::strcmp(arg, "--rules") == 0) {
            std::string list = value();
            size_t start = 0;
            while (start <= list.size()) {
                size_t comma = list.find(',', start);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > start)
                    options.rules.push_back(
                        list.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (std::strcmp(arg, "--allow") == 0) {
            options.extraAllow.push_back(value());
        } else if (std::strcmp(arg, "--no-builtin-allowlist") == 0) {
            options.builtinAllowlist = false;
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            listRules = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            return usage(std::cout, 0);
        } else if (arg[0] == '-') {
            std::cerr << "yasim-lint: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const RuleInfo &info : ruleCatalog())
            std::cout << info.id << "  " << info.summary << "\n";
        return 0;
    }

    if (paths.empty())
        paths = {"src", "bench", "tests"};
    std::vector<std::string> roots;
    for (const std::string &path : paths)
        roots.push_back(
            (std::filesystem::path(root) / path).string());

    std::vector<Finding> findings = lintTree(roots, options);
    for (const Finding &f : findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    if (findings.empty()) {
        std::cerr << "yasim-lint: clean\n";
        return 0;
    }
    std::cerr << "yasim-lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return 1;
}
