#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "source_model.hh"

namespace yasim::lint {

namespace fs = std::filesystem;

namespace {

/** Rule ids, stable order. */
constexpr const char *kRuleD1 = "D1";
constexpr const char *kRuleD2 = "D2";
constexpr const char *kRuleL1 = "L1";
constexpr const char *kRuleL2 = "L2";
constexpr const char *kRuleS1 = "S1";
constexpr const char *kRuleS2 = "S2";

/** Built-in allowlist: the designated seam files, per rule. */
struct AllowEntry
{
    const char *pathSuffix;
    const char *rule;
};

constexpr AllowEntry kBuiltinAllow[] = {
    // The timing harness: wall-clock measurement is its purpose, and
    // it deliberately benchmarks the raw interpreter against replay.
    {"bench/microbench.cc", kRuleD1},
    {"bench/microbench.cc", kRuleL2},
    // The service load generator: measures wall-clock throughput (its
    // purpose) and builds the in-process daemon's engine directly.
    {"bench/bench_service.cc", kRuleD1},
    {"bench/bench_service.cc", kRuleL2},
    // The live-interpretation fallback behind openStepSource() — the
    // one sanctioned FunctionalSim construction site outside src/sim.
    {"src/techniques/trace_store.cc", kRuleL1},
    // The one sanctioned temp+rename implementation: every other
    // library persistence path must go through it.
    {"src/support/artifact_io.cc", kRuleS2},
};

/** D1: banned only when invoked (identifier followed by '('). */
const std::set<std::string> kEntropyCalls = {
    "rand",         "srand",   "drand48",      "lrand48",
    "mrand48",      "random",  "time",         "clock",
    "gettimeofday", "timeofday", "clock_gettime",
};

/** D1: banned wherever they appear. */
const std::set<std::string> kEntropyTypes = {
    "random_device",
    "steady_clock",
    "system_clock",
    "high_resolution_clock",
};

/** D2: container templates whose iteration order is unspecified. */
const std::set<std::string> kUnorderedTemplates = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

/** L2: engine/pool internals bench sources must not name. */
const std::set<std::string> kEngineInternals = {
    "EngineOptions",   "TraceStoreOptions", "TraceStore",
    "ThreadPool",      "globalPool",        "setParallelWorkers",
    "FunctionalSim",
};

/** S1: raw-serialization primitives that demand a version marker. */
const std::set<std::string> kSerializationTriggers = {
    "putRaw", "getRaw", "writeBinary", "readBinary", "fwrite", "fread",
};

/** Layer classification from the path. */
struct Layer
{
    bool techniquesOrCore = false; ///< src/techniques or src/core
    bool bench = false;            ///< bench/
};

Layer
classify(const std::string &path)
{
    Layer layer;
    layer.techniquesOrCore =
        path.find("src/techniques/") != std::string::npos ||
        path.find("src/core/") != std::string::npos;
    layer.bench = path.find("bench/") != std::string::npos &&
                  path.find("src/") == std::string::npos;
    return layer;
}

/**
 * Names of variables/members declared with an unordered container
 * type anywhere in the file (field-sensitive enough at this scale).
 */
std::set<std::string>
unorderedNames(const std::string &code, const std::vector<Token> &tokens)
{
    std::set<std::string> names;
    for (size_t t = 0; t < tokens.size(); ++t) {
        if (!kUnorderedTemplates.count(tokens[t].text))
            continue;
        size_t pos = tokens[t].offset + tokens[t].text.size();
        size_t open = nextSignificantPos(code, pos);
        if (open == std::string::npos || code[open] != '<')
            continue;
        int depth = 0;
        size_t i = open;
        for (; i < code.size(); ++i) {
            if (code[i] == '<')
                ++depth;
            else if (code[i] == '>' && --depth == 0)
                break;
        }
        if (i >= code.size())
            continue;
        size_t after = nextSignificantPos(code, i + 1);
        if (after == std::string::npos)
            continue;
        // Skip reference/pointer declarators.
        while (after < code.size() &&
               (code[after] == '&' || code[after] == '*')) {
            after = nextSignificantPos(code, after + 1);
            if (after == std::string::npos)
                break;
        }
        if (after == std::string::npos || !isIdentChar(code[after]) ||
            std::isdigit(static_cast<unsigned char>(code[after]))) {
            continue;
        }
        // `unordered_map<...>::iterator` is a type use, not a
        // declaration.
        if (code[after] == ':')
            continue;
        size_t end = after;
        while (end < code.size() && isIdentChar(code[end]))
            ++end;
        char following = nextSignificant(code, end);
        if (following == ';' || following == '=' || following == '{' ||
            following == '(' || following == ',' || following == ')') {
            names.insert(code.substr(after, end - after));
        }
    }
    return names;
}

void
addFinding(std::vector<Finding> &findings, const Suppressions &sup,
           const std::string &path, const char *rule, int line,
           std::string message)
{
    if (sup.allows(rule, line))
        return;
    findings.push_back({path, line, rule, std::move(message)});
}

// --- rule implementations -------------------------------------------

void
ruleD1(const std::string &path, const std::string &code,
       const std::vector<Token> &tokens, const Suppressions &sup,
       std::vector<Finding> &findings)
{
    for (const Token &tok : tokens) {
        bool flagged = false;
        std::string what;
        if (kEntropyTypes.count(tok.text)) {
            if (isMemberAccess(code, tok.offset))
                continue;
            flagged = true;
            what = tok.text;
        } else if (kEntropyCalls.count(tok.text)) {
            size_t end = tok.offset + tok.text.size();
            if (nextSignificant(code, end) != '(')
                continue;
            if (isMemberAccess(code, tok.offset) ||
                qualifiedByOtherScope(code, tok.offset)) {
                continue;
            }
            flagged = true;
            what = tok.text + "()";
        }
        if (flagged) {
            addFinding(findings, sup, path, kRuleD1, tok.line,
                       "entropy/wall-clock source '" + what +
                           "' in result-affecting code; use the seeded "
                           "yasim::Rng (support/rng.hh), or move "
                           "timing into an allowlisted harness");
        }
    }
}

void
ruleD2(const std::string &path, const std::string &code,
       const std::vector<Token> &tokens, const Suppressions &sup,
       std::vector<Finding> &findings)
{
    std::set<std::string> names = unorderedNames(code, tokens);
    if (names.empty())
        return;
    for (size_t t = 0; t < tokens.size(); ++t) {
        if (tokens[t].text != "for")
            continue;
        size_t pos = tokens[t].offset + tokens[t].text.size();
        size_t open = nextSignificantPos(code, pos);
        if (open == std::string::npos || code[open] != '(')
            continue;
        int depth = 0;
        size_t colon = std::string::npos;
        size_t close = std::string::npos;
        for (size_t i = open; i < code.size(); ++i) {
            char c = code[i];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                if (--depth == 0 && c == ')') {
                    close = i;
                    break;
                }
            } else if (c == ':' && depth == 1 &&
                       colon == std::string::npos) {
                bool scope = (i + 1 < code.size() &&
                              code[i + 1] == ':') ||
                             (i > 0 && code[i - 1] == ':');
                if (!scope)
                    colon = i;
            } else if (c == ';' && depth == 1) {
                // Classic three-clause for loop: not a range-for.
                colon = std::string::npos;
                break;
            }
        }
        if (colon == std::string::npos || close == std::string::npos)
            continue;
        std::string range = code.substr(colon + 1, close - colon - 1);
        // Ranging over the sorting seam is the sanctioned pattern.
        if (range.find("orderedView") != std::string::npos ||
            range.find("sortedKeys") != std::string::npos) {
            continue;
        }
        for (const Token &rt : tokenize(range)) {
            if (!names.count(rt.text))
                continue;
            addFinding(
                findings, sup, path, kRuleD2, tokens[t].line,
                "iteration over unordered container '" + rt.text +
                    "' — order is unspecified and can leak into "
                    "stats, serialization, or cache keys; use "
                    "yasim::orderedView() (support/ordered.hh) or "
                    "suppress if provably order-insensitive");
            break;
        }
    }
}

void
ruleL1(const std::string &path, const std::string &code,
       const std::vector<Token> &tokens, const Suppressions &sup,
       std::vector<Finding> &findings)
{
    if (!classify(path).techniquesOrCore)
        return;
    for (const Token &tok : tokens) {
        if (tok.text != "FunctionalSim")
            continue;
        (void)code;
        addFinding(findings, sup, path, kRuleL1, tok.line,
                   "techniques/core must consume the StepSource seam "
                   "(openStepSource, techniques/trace_store.hh), never "
                   "FunctionalSim directly — direct use bypasses trace "
                   "replay and forfeits the bit-identity guarantee");
    }
}

void
ruleL2(const std::string &path, const std::string &code,
       const std::vector<Token> &tokens, const Suppressions &sup,
       std::vector<Finding> &findings)
{
    // Direct naming of engine internals; transitive include-graph
    // reachability is G1's job (analyze.cc).
    if (!classify(path).bench)
        return;
    (void)code;
    for (const Token &tok : tokens) {
        if (!kEngineInternals.count(tok.text))
            continue;
        addFinding(findings, sup, path, kRuleL2, tok.line,
                   "bench drivers must go through BenchDriver / "
                   "SimulationService; '" + tok.text +
                       "' is an engine internal (for custom passes, "
                       "open streams with openStepSource(ctx, input))");
    }
}

void
ruleS1(const std::string &path, const std::string &code,
       const std::vector<Token> &tokens, const Suppressions &sup,
       std::vector<Finding> &findings)
{
    (void)code;
    const Token *firstTrigger = nullptr;
    bool hasVersion = false;
    for (const Token &tok : tokens) {
        if (!firstTrigger && kSerializationTriggers.count(tok.text))
            firstTrigger = &tok;
        if (tok.text.find("FormatVersion") != std::string::npos ||
            tok.text.find("SerialVersion") != std::string::npos) {
            hasVersion = true;
        }
    }
    if (firstTrigger && !hasVersion) {
        addFinding(findings, sup, path, kRuleS1, firstTrigger->line,
                   "raw serialization ('" + firstTrigger->text +
                       "') without a format-version marker; declare a "
                       "k<Name>FormatVersion constant, write it into "
                       "the byte stream, and verify it on read");
    }
}

void
ruleS2(const std::string &path, const std::string &code,
       const std::vector<Token> &tokens, const Suppressions &sup,
       std::vector<Finding> &findings)
{
    // Library code only: tools and tests may roll their own files.
    if (path.find("src/") == std::string::npos)
        return;
    bool hasOfstream = false;
    for (const Token &tok : tokens) {
        if (tok.text == "ofstream") {
            hasOfstream = true;
            break;
        }
    }
    if (!hasOfstream)
        return;
    for (const Token &tok : tokens) {
        if (tok.text != "rename")
            continue;
        size_t end = tok.offset + tok.text.size();
        if (nextSignificant(code, end) != '(')
            continue;
        addFinding(findings, sup, path, kRuleS2, tok.line,
                   "hand-rolled artifact persistence (ofstream + "
                   "rename) outside support/artifact_io — checksummed "
                   "framing, fsync, atomic publish, retries, and "
                   "quarantine all live behind writeArtifact()/"
                   "readArtifact() (support/artifact_io.hh); "
                   "copy-pasted temp+rename blocks forfeit them");
    }
}

} // namespace

std::vector<RuleInfo>
ruleCatalog()
{
    return {
        {kRuleD1, "no entropy or wall-clock sources in "
                  "result-affecting code"},
        {kRuleD2, "no direct iteration over unordered containers"},
        {kRuleL1, "techniques/core consume StepSource, never "
                  "FunctionalSim"},
        {kRuleL2, "bench goes through BenchDriver/SimulationService, "
                  "never engine internals"},
        {kRuleS1, "raw serialization carries a format-version marker"},
        {kRuleS2, "library persistence goes through "
                  "support/artifact_io, never raw ofstream+rename"},
    };
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text,
           const Options &options)
{
    const std::string norm = normalizePath(path);

    std::set<std::string> active;
    if (options.rules.empty()) {
        for (const RuleInfo &info : ruleCatalog())
            active.insert(info.id);
    } else {
        active.insert(options.rules.begin(), options.rules.end());
    }
    if (options.builtinAllowlist) {
        for (const AllowEntry &entry : kBuiltinAllow) {
            if (pathEndsWith(norm, entry.pathSuffix))
                active.erase(entry.rule);
        }
    }
    for (const std::string &entry : options.extraAllow) {
        size_t sep = entry.rfind(':');
        if (sep == std::string::npos)
            continue;
        if (pathEndsWith(norm, entry.substr(0, sep)))
            active.erase(entry.substr(sep + 1));
    }
    if (active.empty())
        return {};

    MaskedSource masked = maskSource(text);
    Suppressions sup = parseSuppressions(masked);
    std::vector<Token> tokens = tokenize(masked.code);

    std::vector<Finding> findings;
    if (active.count(kRuleD1))
        ruleD1(norm, masked.code, tokens, sup, findings);
    if (active.count(kRuleD2))
        ruleD2(norm, masked.code, tokens, sup, findings);
    if (active.count(kRuleL1))
        ruleL1(norm, masked.code, tokens, sup, findings);
    if (active.count(kRuleL2))
        ruleL2(norm, masked.code, tokens, sup, findings);
    if (active.count(kRuleS1))
        ruleS1(norm, masked.code, tokens, sup, findings);
    if (active.count(kRuleS2))
        ruleS2(norm, masked.code, tokens, sup, findings);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    for (Finding &f : findings)
        f.file = path;
    return findings;
}

std::vector<Finding>
lintFile(const std::string &path, const Options &options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {{path, 0, "IO", "cannot read file"}};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintSource(path, buffer.str(), options);
}

std::vector<Finding>
lintTree(const std::vector<std::string> &roots, const Options &options)
{
    const std::set<std::string> extensions = {".cc", ".hh", ".cpp",
                                              ".h"};
    std::vector<std::string> files;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (fs::recursive_directory_iterator
                     it(root, fs::directory_options::skip_permission_denied,
                        ec),
                 end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (it->is_directory() &&
                    it->path().filename() == "lint_fixtures") {
                    it.disable_recursion_pending();
                    continue;
                }
                if (!it->is_regular_file())
                    continue;
                if (extensions.count(it->path().extension().string()))
                    files.push_back(it->path().string());
            }
        } else {
            files.push_back(root);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> findings;
    for (const std::string &file : files) {
        std::vector<Finding> found = lintFile(file, options);
        findings.insert(findings.end(), found.begin(), found.end());
    }
    return findings;
}

} // namespace yasim::lint
