/**
 * @file
 * yasim-lint: token/pattern-level enforcement of project invariants.
 *
 * The paper's methodology depends on bit-reproducible comparisons
 * against a reference run, so the repository bans whole classes of
 * constructs that silently break reproducibility (entropy sources,
 * unordered-container iteration feeding output) or erode the layering
 * that makes the trace-replay guarantee auditable. This linter walks
 * the sources and enforces those invariants as named, suppressible
 * rules — no compiler front end required, so it runs in milliseconds
 * as a ctest and on every CI push.
 *
 * Rules (see docs/static-analysis.md for the full catalog):
 *   D1  no entropy or wall-clock sources in result-affecting code
 *   D2  no direct iteration over unordered containers
 *   L1  src/techniques/ and src/core/ consume StepSource, never
 *       FunctionalSim directly
 *   L2  bench drivers go through BenchDriver / SimulationService,
 *       never engine internals
 *   S1  raw serialization code must carry a format-version marker
 *   S2  library persistence goes through support/artifact_io, never
 *       raw ofstream+rename
 *
 * Suppression syntax (in comments):
 *   // yasim-lint: allow(D1)        this line (or next, if the
 *                                   comment stands alone)
 *   // yasim-lint: allow-file(D2)   whole file
 */

#ifndef YASIM_TOOLS_LINT_HH
#define YASIM_TOOLS_LINT_HH

#include <string>
#include <vector>

namespace yasim::lint {

/** One rule violation. */
struct Finding
{
    std::string file;
    int line = 0; ///< 1-based
    std::string rule;
    std::string message;
};

/** Linter knobs. */
struct Options
{
    /** Rules to run; empty = all. */
    std::vector<std::string> rules;
    /**
     * Honour the built-in allowlist (the designated seam files:
     * bench/microbench.cc for D1/L2, src/techniques/trace_store.cc
     * for L1, src/support/artifact_io.cc for S2). Tests disable it to
     * exercise the raw rules.
     */
    bool builtinAllowlist = true;
    /** Extra "path-suffix:RULE" allowlist entries. */
    std::vector<std::string> extraAllow;
};

/** Static rule description for --list-rules and the docs. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** Catalog of every rule the linter knows. */
std::vector<RuleInfo> ruleCatalog();

/**
 * Lint one translation unit given its @p path (used both for layer
 * classification and reporting) and full @p text. Findings come back
 * in line order.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text,
                                const Options &options = {});

/** Lint a file from disk. Unreadable files produce an "IO" finding. */
std::vector<Finding> lintFile(const std::string &path,
                              const Options &options = {});

/**
 * Recursively lint every .cc/.hh/.cpp/.h under @p roots (files listed
 * directly are linted unconditionally). Directories named
 * "lint_fixtures" are skipped — they hold deliberately-violating
 * linter test data. Traversal order is sorted, so output is stable.
 */
std::vector<Finding> lintTree(const std::vector<std::string> &roots,
                              const Options &options = {});

} // namespace yasim::lint

#endif // YASIM_TOOLS_LINT_HH
