/**
 * @file
 * yasim-analyze: whole-repo semantic analysis on top of the per-file
 * token rules (lint.hh).
 *
 * Where yasim-lint inspects one translation unit at a time, this layer
 * builds a project model — every source file masked and tokenized, a
 * resolved include graph, annotation-declared cache-key stamp sites and
 * serialization functions — and checks properties that only exist at
 * the whole-repo level:
 *
 *   G1  layering by reachability: src/techniques and src/core must not
 *       reach sim/functional.hh through any chain of includes except
 *       the StepSource seam (techniques/trace_store.hh); bench drivers
 *       must not reach engine/pool internals past the driver/service
 *       API headers. Computed on the transitive include graph, so a
 *       violation hidden three headers deep is still a violation.
 *   K1  cache-key completeness: every field of a config struct named
 *       by a `key(<key>) covers Struct(header)` annotation must be
 *       stamped inside the annotated key function, or carry a
 *       `key-exempt(<key>: reason)` annotation. An unstamped
 *       simulation-affecting field is a stale-cache correctness bug.
 *   V1  serialization drift: the bodies of functions annotated
 *       `serialized(<unit>)` are fingerprinted into
 *       tools/yasim-lint/serialization.lock together with the value of
 *       the unit's `version(<unit>)` constant; a fingerprint change
 *       without the matching k*FormatVersion bump is an error, so
 *       version ratcheting is mechanical (--update-lock) instead of
 *       remembered.
 *   C2  shared mutable state: non-const namespace-scope or
 *       static-local data in files reachable from the thread-pool /
 *       ServiceDaemon executors must carry a `guarded(<mutex>)`
 *       annotation naming its lock (or an explicit allow).
 *   H1  include hygiene: a directly-included project header none of
 *       whose declared symbols are used (and whose transitive
 *       closure's used symbols are all reachable through the file's
 *       other includes) is flagged, and removable with --fix.
 *
 * Analysis annotations (comments, same prefix as suppressions):
 *   // yasim-lint: key(result) covers CoreConfig(sim/config.hh)
 *   // yasim-lint: serialized(trace)
 *   // yasim-lint: version(trace)
 *   // yasim-lint: key-exempt(warm: latencies never shape tables)
 *   // yasim-lint: guarded(gStateMutex)
 *   // yasim-lint: keep
 *
 * Findings from unreadable files or a corrupt lock/baseline carry the
 * pseudo-rule "IO" so the driver can exit 2 (operational error) rather
 * than 1 (findings).
 */

#ifndef YASIM_TOOLS_ANALYZE_HH
#define YASIM_TOOLS_ANALYZE_HH

#include <string>
#include <vector>

#include "lint.hh"

namespace yasim::lint {

/** Whole-repo analysis knobs (extends the per-file Options). */
struct AnalyzeOptions
{
    /** Token-rule knobs; Options::rules filters *all* families. */
    Options lint;
    /** Remove flagged H1 includes in place. */
    bool fix = false;
    /** Regenerate serialization.lock instead of diffing against it. */
    bool updateLock = false;
    /** Lock path; empty = <root>/tools/yasim-lint/serialization.lock. */
    std::string lockPath;
    /** Baseline path; empty = <root>/tools/yasim-lint/baseline.txt
     *  (missing file = empty baseline). */
    std::string baselinePath;
    /** Subtrees to scan, relative to the root. */
    std::vector<std::string> roots = {"src", "bench", "tests"};
    /**
     * Diff-aware mode: when non-empty, only findings in these
     * root-relative files are reported (V1 and IO findings always
     * survive — the lock is whole-repo state).
     */
    std::vector<std::string> sinceFiles;
    /** Parse and lint files on the global thread pool. */
    bool parallel = true;
};

/** Whole-repo analysis outcome. */
struct AnalyzeResult
{
    /** All findings, sorted by (file, line, rule). */
    std::vector<Finding> findings;
    /** Include lines removed by --fix. */
    int fixedIncludes = 0;
    /** Files parsed into the project model. */
    size_t filesScanned = 0;
};

/** Token rules plus the semantic families, for --list-rules / SARIF. */
std::vector<RuleInfo> analyzeRuleCatalog();

/**
 * Analyze the repository rooted at @p root. Paths in findings are
 * root-relative with '/' separators.
 */
AnalyzeResult analyzeRepo(const std::string &root,
                          const AnalyzeOptions &options = {});

/** Render findings as a SARIF 2.1.0 log (one run, one driver). */
std::string sarifReport(const std::vector<Finding> &findings);

} // namespace yasim::lint

#endif // YASIM_TOOLS_ANALYZE_HH
