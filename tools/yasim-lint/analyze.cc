#include "analyze.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "source_model.hh"
#include "support/parallel.hh"

namespace yasim::lint {

namespace fs = std::filesystem;

namespace {

constexpr const char *kRuleG1 = "G1";
constexpr const char *kRuleK1 = "K1";
constexpr const char *kRuleV1 = "V1";
constexpr const char *kRuleC2 = "C2";
constexpr const char *kRuleH1 = "H1";
constexpr const char *kRuleIo = "IO";

/** Identifiers that look like calls but are control flow or macros. */
const std::set<std::string> kNotFunctionNames = {
    "if",      "for",      "while",    "switch",   "catch",
    "return",  "sizeof",   "alignof",  "decltype", "noexcept",
    "do",      "else",     "new",      "delete",   "throw",
    "static_assert", "defined",  "assert",
    "YASIM_CHECK", "YASIM_DCHECK", "YASIM_ASSERT",
};

/** Declaration-qualifier tokens that make static state benign (C2). */
const std::set<std::string> kImmutableMarkers = {
    "const",     "constexpr", "constinit",          "thread_local",
    "atomic",    "atomic_flag", "atomic_bool",      "atomic_int",
    "atomic_uint64_t", "mutex", "shared_mutex",     "recursive_mutex",
    "once_flag", "condition_variable",
};

// --- project model ---------------------------------------------------

struct IncludeEdge
{
    std::string spelled;  ///< path as written between the quotes
    std::string resolved; ///< root-relative indexed path ("" if none)
    int line = 0;
    bool quoted = false;
};

struct FileModel
{
    std::string path;    ///< root-relative, '/'-separated
    std::string absPath; ///< as on disk, for reads and --fix rewrites
    std::string text;
    MaskedSource masked;
    std::vector<Token> tokens;
    Suppressions sup;
    std::vector<IncludeEdge> includes;
    std::vector<Finding> tokenFindings;
    bool readable = true;
};

/** The parsed repository: files plus the resolved include graph. */
struct Project
{
    std::vector<FileModel> files;
    std::map<std::string, size_t> byPath;

    const FileModel *find(const std::string &path) const
    {
        auto it = byPath.find(path);
        return it == byPath.end() ? nullptr : &files[it->second];
    }

    /** First indexed file whose path ends with @p suffix. */
    const FileModel *findBySuffix(const std::string &suffix) const
    {
        for (const FileModel &f : files) {
            if (pathEndsWith(f.path, suffix))
                return &f;
        }
        return nullptr;
    }
};

std::vector<IncludeEdge>
scanIncludes(const std::string &text)
{
    std::vector<IncludeEdge> edges;
    int line = 1;
    size_t i = 0;
    while (i < text.size()) {
        size_t eol = text.find('\n', i);
        if (eol == std::string::npos)
            eol = text.size();
        size_t p = i;
        while (p < eol && std::isspace(static_cast<unsigned char>(
                              text[p])))
            ++p;
        if (p < eol && text[p] == '#') {
            ++p;
            while (p < eol && std::isspace(static_cast<unsigned char>(
                                  text[p])))
                ++p;
            if (text.compare(p, 7, "include") == 0) {
                p += 7;
                while (p < eol &&
                       std::isspace(
                           static_cast<unsigned char>(text[p])))
                    ++p;
                if (p < eol && (text[p] == '"' || text[p] == '<')) {
                    char closer = text[p] == '"' ? '"' : '>';
                    size_t end = text.find(closer, p + 1);
                    if (end != std::string::npos && end < eol) {
                        edges.push_back({text.substr(p + 1, end - p - 1),
                                         "", line, text[p] == '"'});
                    }
                }
            }
        }
        i = eol + 1;
        ++line;
    }
    return edges;
}

std::string
dirName(const std::string &path)
{
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

std::string
stemOf(const std::string &path)
{
    std::string base = path;
    size_t slash = base.rfind('/');
    if (slash != std::string::npos)
        base = base.substr(slash + 1);
    size_t dot = base.rfind('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

/** Lexically collapse "a/b/../c" and "./" segments. */
std::string
collapsePath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(path);
    while (std::getline(in, part, '/')) {
        if (part.empty() || part == ".")
            continue;
        if (part == ".." && !parts.empty() && parts.back() != "..")
            parts.pop_back();
        else
            parts.push_back(part);
    }
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i)
        out += (i ? "/" : "") + parts[i];
    return out;
}

void
resolveIncludes(Project &project)
{
    for (FileModel &file : project.files) {
        for (IncludeEdge &edge : file.includes) {
            if (!edge.quoted)
                continue;
            std::string spelled = normalizePath(edge.spelled);
            std::string dir = dirName(file.path);
            const std::string candidates[] = {
                collapsePath(dir.empty() ? spelled
                                         : dir + "/" + spelled),
                "src/" + spelled,
                spelled,
            };
            for (const std::string &candidate : candidates) {
                if (project.byPath.count(candidate)) {
                    edge.resolved = candidate;
                    break;
                }
            }
        }
    }
}

/** Tokens of @p file whose offsets fall inside [begin, end]. */
std::pair<size_t, size_t>
tokenRange(const FileModel &file, size_t begin, size_t end)
{
    auto lo = std::lower_bound(
        file.tokens.begin(), file.tokens.end(), begin,
        [](const Token &t, size_t off) { return t.offset < off; });
    auto hi = std::lower_bound(
        file.tokens.begin(), file.tokens.end(), end + 1,
        [](const Token &t, size_t off) { return t.offset < off; });
    return {static_cast<size_t>(lo - file.tokens.begin()),
            static_cast<size_t>(hi - file.tokens.begin())};
}

// --- annotation-declared analysis targets ----------------------------

/** `key(<key>) covers <Struct>(<header>)` on a stamp function. */
struct KeyCover
{
    std::string key;
    std::string structName;
    std::string header;
    const FileModel *stampFile = nullptr;
    int directiveLine = 0;
    /** Resolved stamp-function body (token indices + offsets). */
    bool haveBody = false;
    FunctionBody body;
};

/** `serialized(<unit>)` on a save/load function. */
struct SerializedFn
{
    std::string unit;
    const FileModel *file = nullptr;
    int directiveLine = 0;
    bool haveBody = false;
    FunctionBody body;
};

/** `version(<unit>)` on a k*FormatVersion constant. */
struct VersionDecl
{
    std::string unit;
    const FileModel *file = nullptr;
    int line = 0; ///< line of the constant declaration
    std::string name;
    long value = -1;
    bool parsed = false;
};

struct Annotations
{
    std::vector<KeyCover> covers;
    std::vector<SerializedFn> serialized;
    std::vector<VersionDecl> versions;
};

/** Trim leading/trailing whitespace. */
std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/**
 * Function bodies of @p file in source order, excluding control-flow
 * keywords that mimic the `name(...) {` shape.
 */
std::vector<FunctionBody>
allFunctionBodies(const FileModel &file)
{
    std::set<std::string> names;
    for (const Token &tok : file.tokens) {
        if (!kNotFunctionNames.count(tok.text))
            names.insert(tok.text);
    }
    std::vector<FunctionBody> bodies =
        findFunctionBodies(file.masked.code, file.tokens, names);
    std::sort(bodies.begin(), bodies.end(),
              [](const FunctionBody &a, const FunctionBody &b) {
                  return a.bodyBegin < b.bodyBegin;
              });
    return bodies;
}

/**
 * The function a directive on comment-line @p line annotates: the
 * first definition whose name appears on or after the directive's
 * target line.
 */
bool
resolveAnnotatedFunction(const FileModel &file,
                         const std::vector<FunctionBody> &bodies,
                         int line, FunctionBody &out)
{
    int target = line;
    {
        // Directives sit above the (possibly multi-line) signature;
        // accept the first body starting at or after the directive.
        (void)file;
    }
    for (const FunctionBody &body : bodies) {
        if (body.line >= target) {
            out = body;
            return true;
        }
    }
    return false;
}

/** Parse "name(arg)" style segments out of a directive string. */
bool
parseCall(const std::string &directive, const std::string &head,
          std::string &arg, size_t *after = nullptr)
{
    size_t at = directive.find(head + "(");
    if (at == std::string::npos)
        return false;
    size_t open = at + head.size();
    size_t close = directive.find(')', open);
    if (close == std::string::npos)
        return false;
    arg = trimmed(directive.substr(open + 1, close - open - 1));
    if (after)
        *after = close + 1;
    return !arg.empty();
}

Annotations
collectAnnotations(const Project &project,
                   std::vector<Finding> &findings)
{
    Annotations ann;
    for (const FileModel &file : project.files) {
        std::vector<FunctionBody> bodies;
        bool haveBodies = false;
        auto bodiesOf = [&]() -> const std::vector<FunctionBody> & {
            if (!haveBodies) {
                bodies = allFunctionBodies(file);
                haveBodies = true;
            }
            return bodies;
        };
        for (const auto &[line, text] : file.masked.comments) {
            size_t at = text.find("yasim-lint:");
            if (at == std::string::npos)
                continue;
            std::string directive = text.substr(at + 11);

            std::string arg;
            size_t after = 0;
            // key-exempt( also contains "key(" as a substring? No —
            // "key-exempt(" has '-' after "key", so key( won't match
            // it, but guard against accidental overlap explicitly.
            if (directive.find("key-exempt(") == std::string::npos &&
                parseCall(directive, "key", arg, &after)) {
                std::string rest = directive.substr(after);
                size_t coversAt = rest.find("covers");
                if (coversAt == std::string::npos) {
                    findings.push_back(
                        {file.path, line, kRuleK1,
                         "malformed key() annotation: expected "
                         "'key(<key>) covers <Struct>(<header>)'"});
                    continue;
                }
                std::string target = rest.substr(coversAt + 6);
                size_t open = target.find('(');
                size_t close = target.find(')');
                if (open == std::string::npos ||
                    close == std::string::npos || close < open) {
                    findings.push_back(
                        {file.path, line, kRuleK1,
                         "malformed key() annotation: expected "
                         "'covers <Struct>(<header>)'"});
                    continue;
                }
                KeyCover cover;
                cover.key = arg;
                cover.structName = trimmed(target.substr(0, open));
                cover.header = trimmed(
                    target.substr(open + 1, close - open - 1));
                cover.stampFile = &file;
                cover.directiveLine = line;
                cover.haveBody = resolveAnnotatedFunction(
                    file, bodiesOf(), line, cover.body);
                if (!cover.haveBody) {
                    findings.push_back(
                        {file.path, line, kRuleK1,
                         "key() annotation has no function definition "
                         "after it"});
                    continue;
                }
                ann.covers.push_back(std::move(cover));
            } else if (parseCall(directive, "serialized", arg)) {
                SerializedFn fn;
                fn.unit = arg;
                fn.file = &file;
                fn.directiveLine = line;
                fn.haveBody = resolveAnnotatedFunction(
                    file, bodiesOf(), line, fn.body);
                if (!fn.haveBody) {
                    findings.push_back(
                        {file.path, line, kRuleV1,
                         "serialized() annotation has no function "
                         "definition after it"});
                    continue;
                }
                ann.serialized.push_back(std::move(fn));
            } else if (parseCall(directive, "version", arg)) {
                VersionDecl decl;
                decl.unit = arg;
                decl.file = &file;
                // The annotated declaration: the directive's own line
                // if it has code, else the next line with code.
                int target = line;
                auto hasCode = file.masked.lineHasCode.find(line);
                if (hasCode == file.masked.lineHasCode.end() ||
                    !hasCode->second) {
                    auto next =
                        file.masked.lineHasCode.upper_bound(line);
                    if (next != file.masked.lineHasCode.end())
                        target = next->first;
                }
                decl.line = target;
                // Parse "<name> = <integer>": the '=' on the target
                // line, the last identifier before it, the number
                // after it.
                size_t lineBegin = std::string::npos;
                size_t eq = std::string::npos;
                const Token *nameTok = nullptr;
                for (const Token &tok : file.tokens) {
                    if (tok.line < target)
                        continue;
                    if (tok.line > target)
                        break;
                    if (lineBegin == std::string::npos) {
                        lineBegin = tok.offset;
                        eq = file.masked.code.find('=', lineBegin);
                    }
                    if (eq != std::string::npos && tok.offset < eq)
                        nameTok = &tok;
                }
                if (nameTok && eq != std::string::npos) {
                    size_t v =
                        nextSignificantPos(file.masked.code, eq + 1);
                    if (v != std::string::npos &&
                        std::isdigit(static_cast<unsigned char>(
                            file.masked.code[v]))) {
                        decl.name = nameTok->text;
                        decl.value = std::strtol(
                            file.masked.code.c_str() + v, nullptr, 10);
                        decl.parsed = true;
                    }
                }
                if (!decl.parsed) {
                    findings.push_back(
                        {file.path, line, kRuleV1,
                         "version() annotation: could not parse "
                         "'<name> = <integer>' on the next line"});
                    continue;
                }
                ann.versions.push_back(std::move(decl));
            }
        }
    }
    return ann;
}

// --- G1: layering by reachability ------------------------------------

struct LayerPolicy
{
    /** Path fragments that put a file in scope. */
    std::vector<std::string> scope;
    /** Forbidden header suffixes. */
    std::vector<std::string> forbidden;
    /** Sanctioned seam headers: reachability stops at them. */
    std::vector<std::string> seams;
    /** Appended to the finding message. */
    std::string remedy;
};

bool
matchesAnySuffix(const std::string &path,
                 const std::vector<std::string> &suffixes)
{
    for (const std::string &suffix : suffixes) {
        if (pathEndsWith(path, suffix))
            return true;
    }
    return false;
}

void
ruleG1(const Project &project, std::vector<Finding> &findings)
{
    const std::vector<LayerPolicy> policies = {
        {{"src/techniques/", "src/core/"},
         {"sim/functional.hh"},
         {"techniques/trace_store.hh"},
         "consume the StepSource seam (openStepSource, "
         "techniques/trace_store.hh) instead"},
        {{"bench/"},
         {"support/thread_pool.hh", "support/parallel.hh",
          "engine/engine.hh", "sim/functional.hh"},
         {"engine/bench_driver.hh", "engine/options.hh",
          "engine/result_io.hh", "techniques/service.hh",
          "service/client.hh", "service/daemon.hh"},
         "go through BenchDriver / SimulationService (the engine "
         "parallelizes and caches internally)"},
    };

    for (const LayerPolicy &policy : policies) {
        // A seam's own implementation file is the one sanctioned
        // place that touches what the seam hides.
        std::set<std::string> seamStems;
        for (const std::string &seam : policy.seams)
            seamStems.insert(stemOf(seam));

        for (const FileModel &file : project.files) {
            bool inScope = false;
            for (const std::string &fragment : policy.scope) {
                if (file.path.find(fragment) != std::string::npos)
                    inScope = true;
            }
            if (!inScope || seamStems.count(stemOf(file.path)))
                continue;

            // BFS over resolved includes, opaque at seam headers.
            std::map<std::string, std::string> parent;
            std::vector<std::string> queue = {file.path};
            parent[file.path] = "";
            for (size_t qi = 0; qi < queue.size(); ++qi) {
                const FileModel *node = project.find(queue[qi]);
                if (!node)
                    continue;
                for (const IncludeEdge &edge : node->includes) {
                    if (edge.resolved.empty() ||
                        parent.count(edge.resolved))
                        continue;
                    parent[edge.resolved] = node->path;
                    if (matchesAnySuffix(edge.resolved, policy.seams))
                        continue; // sanctioned: don't look behind it
                    queue.push_back(edge.resolved);
                }
            }

            for (const auto &[reached, from] : parent) {
                if (reached == file.path ||
                    !matchesAnySuffix(reached, policy.forbidden))
                    continue;
                // Reconstruct the chain and anchor the finding on the
                // direct include that starts it.
                std::vector<std::string> chain;
                for (std::string hop = reached; !hop.empty();
                     hop = parent[hop])
                    chain.push_back(hop);
                std::reverse(chain.begin(), chain.end());
                int line = 1;
                for (const IncludeEdge &edge : file.includes) {
                    if (edge.resolved == chain[1]) {
                        line = edge.line;
                        break;
                    }
                }
                if (file.sup.allows(kRuleG1, line))
                    continue;
                std::string text;
                for (size_t i = 1; i < chain.size(); ++i)
                    text += (i > 1 ? " -> " : "") + chain[i];
                findings.push_back(
                    {file.path, line, kRuleG1,
                     "reaches " + reached +
                         " through the include graph (" + text +
                         "); " + policy.remedy});
            }
        }
    }
}

// --- K1: cache-key completeness --------------------------------------

struct FieldDecl
{
    std::string name;
    int line = 0;
};

/**
 * Member fields of @p structName declared in @p hdr. Statement-based:
 * the struct body is split into top-level statements; statements with
 * a parameter list (functions), nested types, usings, and statics are
 * skipped; the declared name is the last identifier before the
 * initializer or the semicolon.
 */
std::vector<FieldDecl>
structFields(const FileModel &hdr, const std::string &structName,
             bool *found)
{
    *found = false;
    const std::string &code = hdr.masked.code;
    size_t bodyOpen = std::string::npos;
    for (size_t t = 0; t + 1 < hdr.tokens.size(); ++t) {
        if ((hdr.tokens[t].text != "struct" &&
             hdr.tokens[t].text != "class") ||
            hdr.tokens[t + 1].text != structName)
            continue;
        // Scan past any base-class clause for '{'; ';' means forward
        // declaration.
        size_t p = hdr.tokens[t + 1].offset + structName.size();
        while (p < code.size() && code[p] != '{' && code[p] != ';')
            ++p;
        if (p < code.size() && code[p] == '{') {
            bodyOpen = p;
            break;
        }
    }
    std::vector<FieldDecl> fields;
    if (bodyOpen == std::string::npos)
        return fields;
    *found = true;

    int depth = 0;
    size_t bodyClose = bodyOpen;
    for (; bodyClose < code.size(); ++bodyClose) {
        if (code[bodyClose] == '{')
            ++depth;
        else if (code[bodyClose] == '}' && --depth == 0)
            break;
    }

    const std::set<std::string> kSkipWords = {
        "using",  "typedef", "friend", "static", "struct",
        "class",  "enum",    "union",  "template", "operator",
    };

    size_t stmtStart = bodyOpen + 1;
    size_t i = bodyOpen + 1;
    bool hasParen = false;
    size_t terminator = std::string::npos;
    while (i < bodyClose) {
        char c = code[i];
        if (c == '(') {
            hasParen = true;
            int d = 0;
            for (; i < bodyClose; ++i) {
                if (code[i] == '(')
                    ++d;
                else if (code[i] == ')' && --d == 0)
                    break;
            }
        } else if (c == '{') {
            // Brace group: skip it; a ';' right after makes it an
            // initializer (part of the statement), otherwise it ends
            // the statement (function/class definition).
            if (terminator == std::string::npos)
                terminator = i;
            int d = 0;
            size_t j = i;
            for (; j < bodyClose; ++j) {
                if (code[j] == '{')
                    ++d;
                else if (code[j] == '}' && --d == 0)
                    break;
            }
            size_t next = nextSignificantPos(code, j + 1);
            if (next != std::string::npos && next < bodyClose &&
                code[next] == ';') {
                i = next; // fall through to the ';' handling below
                c = ';';
            } else {
                // Definition: discard this statement.
                stmtStart = j + 1;
                i = j + 1;
                hasParen = false;
                terminator = std::string::npos;
                continue;
            }
        }
        if (c == ';') {
            size_t end = terminator == std::string::npos
                             ? i
                             : std::min(terminator, i);
            // '=' initializer bounds the declarator too.
            auto [lo, hi] = tokenRange(hdr, stmtStart, end - 1);
            size_t eq = std::string::npos;
            for (size_t p = stmtStart; p < end; ++p) {
                if (code[p] == '=' &&
                    (p + 1 >= code.size() || code[p + 1] != '=') &&
                    (p == 0 || (code[p - 1] != '=' &&
                                code[p - 1] != '!' &&
                                code[p - 1] != '<' &&
                                code[p - 1] != '>'))) {
                    eq = p;
                    break;
                }
            }
            bool skip = hasParen;
            const Token *nameTok = nullptr;
            for (size_t t = lo; t < hi; ++t) {
                const Token &tok = hdr.tokens[t];
                if (kSkipWords.count(tok.text)) {
                    skip = true;
                    break;
                }
                if (eq == std::string::npos || tok.offset < eq)
                    nameTok = &tok;
            }
            if (!skip && nameTok) {
                fields.push_back({nameTok->text, nameTok->line});
            }
            stmtStart = i + 1;
            hasParen = false;
            terminator = std::string::npos;
        }
        ++i;
    }
    return fields;
}

void
ruleK1(const Project &project, const Annotations &ann,
       std::vector<Finding> &findings)
{
    for (const KeyCover &cover : ann.covers) {
        const FileModel *hdr = project.findBySuffix(cover.header);
        if (!hdr) {
            findings.push_back(
                {cover.stampFile->path, cover.directiveLine, kRuleK1,
                 "key() annotation names header '" + cover.header +
                     "', which is not in the analyzed tree"});
            continue;
        }
        bool found = false;
        std::vector<FieldDecl> fields =
            structFields(*hdr, cover.structName, &found);
        if (!found) {
            findings.push_back(
                {cover.stampFile->path, cover.directiveLine, kRuleK1,
                 "key() annotation names struct '" + cover.structName +
                     "', which was not found in " + hdr->path});
            continue;
        }
        // Every identifier inside the stamp function body counts as a
        // stamped field mention (member access yields the bare name).
        auto [lo, hi] = tokenRange(*cover.stampFile, cover.body.bodyBegin,
                                   cover.body.bodyEnd);
        std::set<std::string> stamped;
        for (size_t t = lo; t < hi; ++t)
            stamped.insert(cover.stampFile->tokens[t].text);

        for (const FieldDecl &field : fields) {
            if (stamped.count(field.name))
                continue;
            if (hdr->sup.exemptFromKey(cover.key, field.line) ||
                hdr->sup.allows(kRuleK1, field.line))
                continue;
            findings.push_back(
                {hdr->path, field.line, kRuleK1,
                 "field '" + cover.structName + "::" + field.name +
                     "' is not stamped into the '" + cover.key +
                     "' cache key (" + cover.stampFile->path + ":" +
                     std::to_string(cover.body.line) + " " +
                     cover.body.name +
                     ") — a simulation-affecting field missing from "
                     "the key silently serves stale cached results; "
                     "stamp it, or annotate the field with "
                     "'yasim-lint: key-exempt(" +
                     cover.key + ": <reason>)'"});
        }
    }
}

// --- V1: serialization drift -----------------------------------------

struct LockEntry
{
    std::string versionName;
    long versionValue = -1;
    uint64_t fingerprint = 0;
    size_t functions = 0;
};

std::string
hex64(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

bool
parseLock(const std::string &text, std::map<std::string, LockEntry> &out,
          std::string &error)
{
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::istringstream fields(t);
        std::string unit, version, fingerprint, functions;
        fields >> unit >> version >> fingerprint >> functions;
        size_t eq = version.find('=');
        LockEntry entry;
        bool ok = !unit.empty() && eq != std::string::npos &&
                  fingerprint.compare(0, 12, "fingerprint=") == 0 &&
                  functions.compare(0, 10, "functions=") == 0;
        if (ok) {
            entry.versionName = version.substr(0, eq);
            char *end = nullptr;
            entry.versionValue =
                std::strtol(version.c_str() + eq + 1, &end, 10);
            std::string hex = fingerprint.substr(12);
            ok = end && *end == '\0' && hex.size() == 16;
            if (ok) {
                for (char c : hex) {
                    if (!std::isxdigit(static_cast<unsigned char>(c)))
                        ok = false;
                }
            }
            if (ok) {
                entry.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
                entry.functions = std::strtoul(
                    functions.c_str() + 10, nullptr, 10);
            }
        }
        if (!ok) {
            error = "unparsable line " + std::to_string(lineNo) +
                    ": '" + t + "'";
            return false;
        }
        out[unit] = entry;
    }
    return true;
}

void
ruleV1(const Annotations &ann, const std::string &lockPath,
       bool updateLock, std::vector<Finding> &findings)
{
    if (ann.serialized.empty() && !updateLock)
        return;

    // Current state: per-unit combined fingerprint over the bodies of
    // every serialized() function, in (file, line) order so the value
    // is stable whatever the scan order.
    struct Unit
    {
        std::vector<const SerializedFn *> fns;
        const VersionDecl *version = nullptr;
    };
    std::map<std::string, Unit> units;
    for (const SerializedFn &fn : ann.serialized)
        units[fn.unit].fns.push_back(&fn);
    for (const VersionDecl &decl : ann.versions) {
        if (units[decl.unit].version == nullptr)
            units[decl.unit].version = &decl;
    }

    std::map<std::string, LockEntry> current;
    for (auto &[name, unit] : units) {
        if (unit.fns.empty())
            continue; // version() with no serialized() fns (yet)
        std::sort(unit.fns.begin(), unit.fns.end(),
                  [](const SerializedFn *a, const SerializedFn *b) {
                      if (a->file->path != b->file->path)
                          return a->file->path < b->file->path;
                      return a->body.bodyBegin < b->body.bodyBegin;
                  });
        if (!unit.version) {
            const SerializedFn *first = unit.fns.front();
            findings.push_back(
                {first->file->path, first->body.line, kRuleV1,
                 "serialization unit '" + name +
                     "' has serialized() functions but no "
                     "'yasim-lint: version(" + name +
                     ")' annotation on its format-version constant"});
            continue;
        }
        uint64_t combined = 1469598103934665603ull;
        for (const SerializedFn *fn : unit.fns) {
            combined ^= fingerprintRange(fn->file->masked.code,
                                         fn->body.bodyBegin,
                                         fn->body.bodyEnd + 1);
            combined *= 1099511628211ull;
        }
        LockEntry entry;
        entry.versionName = unit.version->name;
        entry.versionValue = unit.version->value;
        entry.fingerprint = combined;
        entry.functions = unit.fns.size();
        current[name] = entry;
    }

    if (updateLock) {
        std::ostringstream out;
        out << "# yasim-analyze serialization lock.\n"
            << "# One line per framed serialization unit:\n"
            << "#   <unit> <versionConst>=<value> fingerprint=<hex64> "
               "functions=<n>\n"
            << "# The fingerprint covers the bodies of every function "
               "annotated\n"
            << "# 'yasim-lint: serialized(<unit>)'. Regenerate with "
               "--update-lock\n"
            << "# in the same commit that bumps the version "
               "constant.\n";
        for (const auto &[name, entry] : current) {
            out << name << " " << entry.versionName << "="
                << entry.versionValue
                << " fingerprint=" << hex64(entry.fingerprint)
                << " functions=" << entry.functions << "\n";
        }
        std::ofstream file(lockPath, std::ios::binary);
        if (!file || !(file << out.str())) {
            findings.push_back({lockPath, 0, kRuleIo,
                                "cannot write serialization lock"});
        }
        return;
    }

    std::ifstream in(lockPath, std::ios::binary);
    if (!in) {
        findings.push_back(
            {lockPath, 0, kRuleV1,
             "serialization lock missing — run yasim-analyze "
             "--update-lock and commit the result"});
        return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::map<std::string, LockEntry> locked;
    std::string error;
    if (!parseLock(buffer.str(), locked, error)) {
        findings.push_back({lockPath, 0, kRuleIo,
                            "corrupt serialization lock: " + error});
        return;
    }

    for (const auto &[name, entry] : current) {
        auto it = locked.find(name);
        const VersionDecl *decl = units[name].version;
        if (it == locked.end()) {
            findings.push_back(
                {decl->file->path, decl->line, kRuleV1,
                 "serialization unit '" + name +
                     "' is not recorded in " + lockPath +
                     " — run yasim-analyze --update-lock"});
            continue;
        }
        const LockEntry &old = it->second;
        bool fpSame = old.fingerprint == entry.fingerprint &&
                      old.functions == entry.functions;
        bool verSame = old.versionValue == entry.versionValue &&
                       old.versionName == entry.versionName;
        if (fpSame && verSame)
            continue;
        if (!fpSame && verSame) {
            findings.push_back(
                {decl->file->path, decl->line, kRuleV1,
                 "serialized layout of unit '" + name +
                     "' changed (fingerprint " +
                     hex64(old.fingerprint) + " -> " +
                     hex64(entry.fingerprint) + ") but " +
                     entry.versionName + " is still " +
                     std::to_string(entry.versionValue) +
                     " — old artifacts would decode as garbage or "
                     "stale data; bump the version, then run "
                     "yasim-analyze --update-lock"});
        } else {
            findings.push_back(
                {decl->file->path, decl->line, kRuleV1,
                 "serialization unit '" + name +
                     "' changed (version " +
                     std::to_string(old.versionValue) + " -> " +
                     std::to_string(entry.versionValue) +
                     ") — run yasim-analyze --update-lock to record "
                     "the new fingerprint"});
        }
    }
    for (const auto &[name, entry] : locked) {
        if (!current.count(name)) {
            findings.push_back(
                {lockPath, 0, kRuleV1,
                 "stale lock entry '" + name +
                     "': no serialized() functions remain — run "
                     "yasim-analyze --update-lock"});
        }
    }
}

// --- C2: shared mutable state ----------------------------------------

/** Headers whose includers submit work to shared executors. */
const std::vector<std::string> kExecutorHeaders = {
    "support/thread_pool.hh",
    "support/parallel.hh",
    "service/daemon.hh",
};

/**
 * Files reachable from executor-submitting roots: BFS over includes,
 * plus every header's sibling implementation file (a task calling
 * through foo.hh executes foo.cc).
 */
std::set<std::string>
executorReachable(const Project &project)
{
    std::vector<std::string> queue;
    std::set<std::string> reachable;
    auto add = [&](const std::string &path) {
        if (reachable.insert(path).second)
            queue.push_back(path);
    };
    for (const FileModel &file : project.files) {
        for (const IncludeEdge &edge : file.includes) {
            if (!edge.resolved.empty() &&
                matchesAnySuffix(edge.resolved, kExecutorHeaders)) {
                add(file.path);
                break;
            }
        }
    }
    for (size_t qi = 0; qi < queue.size(); ++qi) {
        const FileModel *node = project.find(queue[qi]);
        if (!node)
            continue;
        for (const IncludeEdge &edge : node->includes) {
            if (edge.resolved.empty())
                continue;
            add(edge.resolved);
            // header -> implementation
            std::string stem = dirName(edge.resolved);
            stem = (stem.empty() ? "" : stem + "/") +
                   stemOf(edge.resolved);
            for (const char *ext : {".cc", ".cpp"}) {
                if (project.byPath.count(stem + ext))
                    add(stem + ext);
            }
        }
    }
    return reachable;
}

/** Scope kinds for the brace-structure walk. */
enum class ScopeKind { Namespace, Type, Function, Other };

/**
 * Flag mutable static-storage declarations in @p file: namespace-scope
 * variables and function-local statics without an immutability marker
 * or a guarded(<mutex>) annotation.
 */
void
scanSharedState(const FileModel &file, std::vector<Finding> &findings)
{
    const std::string &code = file.masked.code;
    std::vector<ScopeKind> scopes;

    const std::set<std::string> kSkipWords = {
        "using", "typedef", "friend", "struct", "class",  "enum",
        "union", "template", "operator", "extern", "namespace",
        "static_assert",
    };

    auto atNamespaceScope = [&]() {
        for (ScopeKind kind : scopes) {
            if (kind != ScopeKind::Namespace)
                return false;
        }
        return true;
    };

    auto classifyBrace = [&](size_t at) {
        // Look back to the previous ';', '{', or '}' and classify by
        // what introduced this brace.
        size_t start = at;
        while (start > 0 && code[start - 1] != ';' &&
               code[start - 1] != '{' && code[start - 1] != '}')
            --start;
        std::string intro = code.substr(start, at - start);
        for (const Token &tok : tokenize(intro)) {
            if (tok.text == "namespace")
                return ScopeKind::Namespace;
            if (tok.text == "struct" || tok.text == "class" ||
                tok.text == "union" || tok.text == "enum")
                return ScopeKind::Type;
        }
        size_t prev = prevSignificantPos(code, at);
        if (prev != std::string::npos && code[prev] == ')')
            return ScopeKind::Function;
        return ScopeKind::Other;
    };

    auto examine = [&](size_t stmtStart, size_t stmtEnd, bool hasParen,
                       bool inFunction) {
        auto [lo, hi] = tokenRange(file, stmtStart, stmtEnd);
        if (lo >= hi)
            return;
        bool isStatic = false;
        bool immutable = false;
        bool skip = hasParen;
        for (size_t t = lo; t < hi; ++t) {
            const std::string &text = file.tokens[t].text;
            if (text == "static")
                isStatic = true;
            if (kImmutableMarkers.count(text))
                immutable = true;
            if (kSkipWords.count(text))
                skip = true;
        }
        if (skip || immutable)
            return;
        if (inFunction && !isStatic)
            return; // plain locals are task-private
        // Declared name: last identifier before '=' / '{' / end.
        size_t bound = stmtEnd;
        for (size_t p = stmtStart; p < stmtEnd; ++p) {
            if (code[p] == '=' || code[p] == '{') {
                bound = p;
                break;
            }
        }
        const Token *nameTok = nullptr;
        for (size_t t = lo; t < hi; ++t) {
            if (file.tokens[t].offset >= bound)
                break;
            nameTok = &file.tokens[t];
        }
        // A single token ("return x" style fragments) or no name
        // means this is not a declaration.
        if (!nameTok || hi - lo < 2 || nameTok == &file.tokens[lo])
            return;
        if (file.sup.allows(kRuleC2, nameTok->line))
            return;
        findings.push_back(
            {file.path, nameTok->line, kRuleC2,
             std::string("mutable ") +
                 (inFunction ? "function-local static '"
                             : "namespace-scope state '") +
                 nameTok->text +
                 "' is reachable from thread-pool/ServiceDaemon "
                 "executor tasks — annotate the declaration with "
                 "'yasim-lint: guarded(<mutex>)' naming the lock that "
                 "protects it, make it const/atomic, or move it into "
                 "the task"});
    };

    size_t stmtStart = 0;
    bool hasParen = false;
    size_t i = 0;
    auto skipPreprocessor = [&](size_t at) {
        // '#' directives are not statements; consume the line
        // (honoring backslash continuations).
        size_t p = at;
        while (p < code.size()) {
            size_t eol = code.find('\n', p);
            if (eol == std::string::npos)
                return code.size();
            if (eol > p && code[eol - 1] == '\\') {
                p = eol + 1;
                continue;
            }
            return eol;
        }
        return code.size();
    };
    while (i < code.size()) {
        char c = code[i];
        if (c == '#') {
            // Only a line-leading '#' starts a directive; masked
            // strings can't contain one.
            size_t lineStart = code.rfind('\n', i);
            lineStart = lineStart == std::string::npos ? 0
                                                       : lineStart + 1;
            bool leading = true;
            for (size_t p = lineStart; p < i; ++p) {
                if (!std::isspace(static_cast<unsigned char>(code[p])))
                    leading = false;
            }
            if (leading) {
                i = skipPreprocessor(i);
                stmtStart = i;
                hasParen = false;
                continue;
            }
        } else if (c == '(') {
            hasParen = true;
            int d = 0;
            for (; i < code.size(); ++i) {
                if (code[i] == '(')
                    ++d;
                else if (code[i] == ')' && --d == 0)
                    break;
            }
        } else if (c == '{') {
            ScopeKind kind = classifyBrace(i);
            bool wasNamespace = atNamespaceScope();
            if (kind == ScopeKind::Function && wasNamespace) {
                // Entering a function body: scan it for static
                // locals, statement by statement.
                int d = 0;
                size_t j = i;
                for (; j < code.size(); ++j) {
                    if (code[j] == '{')
                        ++d;
                    else if (code[j] == '}' && --d == 0)
                        break;
                }
                size_t innerStart = i + 1;
                bool innerParen = false;
                for (size_t p = i + 1; p < j; ++p) {
                    char ic = code[p];
                    if (ic == '(') {
                        int pd = 0;
                        for (; p < j; ++p) {
                            if (code[p] == '(')
                                ++pd;
                            else if (code[p] == ')' && --pd == 0)
                                break;
                        }
                        innerParen = true;
                    } else if (ic == '{') {
                        int pd = 0;
                        for (; p < j; ++p) {
                            if (code[p] == '{')
                                ++pd;
                            else if (code[p] == '}' && --pd == 0)
                                break;
                        }
                        innerStart = p + 1;
                        innerParen = false;
                    } else if (ic == ';') {
                        examine(innerStart, p, innerParen, true);
                        innerStart = p + 1;
                        innerParen = false;
                    }
                }
                stmtStart = j + 1;
                i = j + 1;
                hasParen = false;
                continue;
            }
            scopes.push_back(kind);
            stmtStart = i + 1;
            hasParen = false;
        } else if (c == '}') {
            if (!scopes.empty())
                scopes.pop_back();
            stmtStart = i + 1;
            hasParen = false;
        } else if (c == ';') {
            if (atNamespaceScope())
                examine(stmtStart, i, hasParen, false);
            stmtStart = i + 1;
            hasParen = false;
        }
        ++i;
    }
}

void
ruleC2(const Project &project, std::vector<Finding> &findings)
{
    std::set<std::string> reachable = executorReachable(project);
    for (const std::string &path : reachable) {
        const FileModel *file = project.find(path);
        if (!file)
            continue;
        // Library and bench code only: tests run under gtest's own
        // serial driver.
        if (path.compare(0, 4, "src/") != 0 &&
            path.compare(0, 6, "bench/") != 0)
            continue;
        if (file->sup.fileRules.count(kRuleC2) ||
            file->sup.fileRules.count("*"))
            continue;
        scanSharedState(*file, findings);
    }
}

// --- H1: include hygiene ---------------------------------------------

/**
 * Identifiers a header offers to its includers: type names, function
 * names, enumerators, macros, usings, and extern/const objects. A
 * heuristic — used conservatively: an include is only flagged when
 * nothing it provides (directly or transitively, see ruleH1) is
 * referenced.
 */
std::set<std::string>
providedSymbols(const FileModel &hdr)
{
    std::set<std::string> provided;
    const std::string &code = hdr.masked.code;
    const std::vector<Token> &tokens = hdr.tokens;

    const std::set<std::string> kPrevKeywords = {
        "return", "if",  "while", "for",   "switch", "case",
        "goto",   "new", "delete", "throw", "do",    "else",
        "sizeof", "co_return", "co_yield", "and", "or", "not",
    };

    // #define NAME
    size_t pos = 0;
    while ((pos = hdr.text.find("#", pos)) != std::string::npos) {
        size_t lineStart = hdr.text.rfind('\n', pos);
        lineStart =
            lineStart == std::string::npos ? 0 : lineStart + 1;
        bool leading = true;
        for (size_t p = lineStart; p < pos; ++p) {
            if (!std::isspace(
                    static_cast<unsigned char>(hdr.text[p])))
                leading = false;
        }
        size_t p = pos + 1;
        while (p < hdr.text.size() &&
               std::isspace(static_cast<unsigned char>(hdr.text[p])))
            ++p;
        if (leading && hdr.text.compare(p, 6, "define") == 0) {
            p += 6;
            while (p < hdr.text.size() &&
                   std::isspace(
                       static_cast<unsigned char>(hdr.text[p])))
                ++p;
            size_t end = p;
            while (end < hdr.text.size() &&
                   isIdentChar(hdr.text[end]))
                ++end;
            if (end > p)
                provided.insert(hdr.text.substr(p, end - p));
        }
        ++pos;
    }

    for (size_t t = 0; t < tokens.size(); ++t) {
        const std::string &text = tokens[t].text;

        // struct/class/enum [class] Name
        if (text == "struct" || text == "class" || text == "union" ||
            text == "enum") {
            size_t n = t + 1;
            if (n < tokens.size() && (tokens[n].text == "class" ||
                                      tokens[n].text == "struct"))
                ++n;
            if (n < tokens.size()) {
                provided.insert(tokens[n].text);
                // Enumerators: identifiers at depth 1 of the enum
                // body.
                if (text == "enum") {
                    size_t p = tokens[n].offset;
                    while (p < code.size() && code[p] != '{' &&
                           code[p] != ';')
                        ++p;
                    if (p < code.size() && code[p] == '{') {
                        int depth = 0;
                        size_t end = p;
                        for (; end < code.size(); ++end) {
                            if (code[end] == '{')
                                ++depth;
                            else if (code[end] == '}' && --depth == 0)
                                break;
                        }
                        auto [lo, hi] = tokenRange(hdr, p, end);
                        for (size_t e = lo; e < hi; ++e)
                            provided.insert(hdr.tokens[e].text);
                    }
                }
            }
            continue;
        }

        // using Name = ...;   (not "using namespace")
        if (text == "using") {
            if (t + 1 < tokens.size() &&
                tokens[t + 1].text != "namespace") {
                size_t after = tokens[t + 1].offset +
                               tokens[t + 1].text.size();
                if (nextSignificant(code, after) == '=')
                    provided.insert(tokens[t + 1].text);
            }
            continue;
        }

        // constexpr/extern/inline/constinit object declarations.
        if (text == "constexpr" || text == "extern" ||
            text == "inline" || text == "constinit") {
            for (size_t n = t + 1; n < tokens.size(); ++n) {
                size_t off = tokens[n].offset;
                bool crossed = false;
                for (size_t p = tokens[t].offset; p < off; ++p) {
                    if (code[p] == ';' || code[p] == '(' ||
                        code[p] == '{')
                        crossed = true;
                }
                if (crossed)
                    break;
                size_t after = off + tokens[n].text.size();
                char next = nextSignificant(code, after);
                if (next == '=' || next == ';' || next == '[' ||
                    next == '{')
                    provided.insert(tokens[n].text);
            }
            continue;
        }

        // Function declarations: identifier followed by '(' whose
        // preceding token reads like a type.
        size_t after = tokens[t].offset + text.size();
        if (nextSignificant(code, after) != '(')
            continue;
        if (kNotFunctionNames.count(text) ||
            kPrevKeywords.count(text))
            continue;
        if (isMemberAccess(code, tokens[t].offset) ||
            qualifiedByOtherScope(code, tokens[t].offset))
            continue;
        size_t prev = prevSignificantPos(code, tokens[t].offset);
        if (prev == std::string::npos)
            continue;
        char pc = code[prev];
        if (!(isIdentChar(pc) || pc == '>' || pc == '&' || pc == '*'))
            continue;
        if (t > 0 && kPrevKeywords.count(tokens[t - 1].text))
            continue;
        provided.insert(text);
    }
    provided.erase("");
    return provided;
}

void
ruleH1(const Project &project, bool fix, int &fixedIncludes,
       std::vector<Finding> &findings)
{
    // Per-header provided sets, then transitive closures.
    std::map<std::string, std::set<std::string>> provided;
    for (const FileModel &file : project.files)
        provided[file.path] = providedSymbols(file);

    std::map<std::string, std::set<std::string>> closure;
    std::function<const std::set<std::string> &(const std::string &,
                                                std::set<std::string> &)>
        closureOf = [&](const std::string &path,
                        std::set<std::string> &visiting)
        -> const std::set<std::string> & {
        auto it = closure.find(path);
        if (it != closure.end())
            return it->second;
        std::set<std::string> result = provided[path];
        if (visiting.insert(path).second) {
            const FileModel *file = project.find(path);
            if (file) {
                for (const IncludeEdge &edge : file->includes) {
                    if (edge.resolved.empty())
                        continue;
                    const std::set<std::string> &sub =
                        closureOf(edge.resolved, visiting);
                    result.insert(sub.begin(), sub.end());
                }
            }
            visiting.erase(path);
        }
        return closure.emplace(path, std::move(result)).first->second;
    };

    std::map<std::string, std::vector<int>> toRemove;
    auto isImplFile = [](const std::string &path) {
        return (path.size() > 3 &&
                path.compare(path.size() - 3, 3, ".cc") == 0) ||
               (path.size() > 4 &&
                path.compare(path.size() - 4, 4, ".cpp") == 0);
    };
    for (const FileModel &file : project.files) {
        // Implementation files only: a header's includes are part of
        // its exported interface and removing them can break every
        // includer.
        if (!isImplFile(file.path))
            continue;
        std::set<std::string> used;
        for (const Token &tok : file.tokens)
            used.insert(tok.text);

        for (const IncludeEdge &edge : file.includes) {
            if (edge.resolved.empty())
                continue;
            if (stemOf(edge.resolved) == stemOf(file.path))
                continue; // never the TU's own header
            if (file.sup.allows(kRuleH1, edge.line))
                continue;
            const std::set<std::string> &direct =
                provided[edge.resolved];
            if (direct.empty() || direct.count("operator"))
                continue; // can't reason about it — keep
            bool directUse = false;
            for (const std::string &sym : direct) {
                if (used.count(sym)) {
                    directUse = true;
                    break;
                }
            }
            if (directUse)
                continue;
            // Transitive safety: everything this include's closure
            // supplies that the file actually uses must also arrive
            // through the other includes.
            std::set<std::string> visiting;
            const std::set<std::string> &whole =
                closureOf(edge.resolved, visiting);
            std::set<std::string> others;
            for (const IncludeEdge &other : file.includes) {
                if (other.resolved.empty() ||
                    other.resolved == edge.resolved)
                    continue;
                const std::set<std::string> &sub =
                    closureOf(other.resolved, visiting);
                others.insert(sub.begin(), sub.end());
            }
            bool transitivelyNeeded = false;
            for (const std::string &sym : whole) {
                if (used.count(sym) && !others.count(sym)) {
                    transitivelyNeeded = true;
                    break;
                }
            }
            if (transitivelyNeeded)
                continue;
            findings.push_back(
                {file.path, edge.line, kRuleH1,
                 "unused include \"" + edge.spelled +
                     "\" — nothing it declares is referenced here "
                     "(remove it, run yasim-analyze --fix, or "
                     "annotate '// yasim-lint: keep' if it is "
                     "load-bearing)"});
            if (fix)
                toRemove[file.path].push_back(edge.line);
        }
    }

    for (const auto &[path, lines] : toRemove) {
        const FileModel *file = project.find(path);
        if (!file)
            continue;
        std::set<int> drop(lines.begin(), lines.end());
        std::istringstream in(file->text);
        std::ostringstream out;
        std::string line;
        int lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            if (!drop.count(lineNo))
                out << line << "\n";
        }
        std::ofstream rewrite(file->absPath.empty() ? path
                                                    : file->absPath,
                              std::ios::binary);
        if (rewrite && (rewrite << out.str()))
            fixedIncludes += static_cast<int>(drop.size());
    }
}

// --- baseline --------------------------------------------------------

struct BaselineEntry
{
    std::string pathSuffix;
    std::string rule;
};

bool
parseBaseline(const std::string &text, std::vector<BaselineEntry> &out,
              std::string &error)
{
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;
        size_t first = t.find(':');
        size_t second =
            first == std::string::npos ? std::string::npos
                                       : t.find(':', first + 1);
        if (first == std::string::npos ||
            second == std::string::npos ||
            trimmed(t.substr(second + 1)).empty()) {
            error = "line " + std::to_string(lineNo) +
                    ": expected '<path>:<RULE>: <justification>' "
                    "(the justification is mandatory)";
            return false;
        }
        out.push_back({t.substr(0, first),
                       trimmed(t.substr(first + 1,
                                        second - first - 1))});
    }
    return true;
}

} // namespace

std::vector<RuleInfo>
analyzeRuleCatalog()
{
    std::vector<RuleInfo> catalog = ruleCatalog();
    catalog.push_back({"G1", "layering by include-graph reachability: "
                             "techniques/core stop at the StepSource "
                             "seam, bench stops at the service API"});
    catalog.push_back({"K1", "cache-key completeness: every config "
                             "field is stamped into its annotated "
                             "cache key or justified key-exempt"});
    catalog.push_back({"V1", "serialization drift: layout fingerprints "
                             "must match serialization.lock or the "
                             "format version must be bumped"});
    catalog.push_back({"C2", "shared mutable state reachable from "
                             "executor tasks must name its lock via "
                             "guarded(<mutex>)"});
    catalog.push_back({"H1", "include hygiene: unused direct includes "
                             "(fixable with --fix)"});
    return catalog;
}

AnalyzeResult
analyzeRepo(const std::string &root, const AnalyzeOptions &options)
{
    AnalyzeResult result;

    // --- enumerate ----------------------------------------------------
    const std::set<std::string> extensions = {".cc", ".hh", ".cpp",
                                              ".h"};
    std::vector<std::string> paths;   // root-relative
    std::vector<std::string> missing; // roots that don't exist
    for (const std::string &sub : options.roots) {
        fs::path base = fs::path(root) / sub;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            paths.push_back(normalizePath(sub));
            continue;
        }
        if (!fs::is_directory(base, ec)) {
            missing.push_back(normalizePath(sub));
            continue;
        }
        for (fs::recursive_directory_iterator
                 it(base, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_directory() &&
                (it->path().filename() == "lint_fixtures" ||
                 it->path().filename() == "build")) {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            if (!extensions.count(it->path().extension().string()))
                continue;
            std::string rel = normalizePath(
                fs::relative(it->path(), root, ec).string());
            if (!ec)
                paths.push_back(rel);
        }
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    // --- parse (parallel) ---------------------------------------------
    auto parseOne = [&](size_t i) {
        FileModel model;
        model.path = paths[i];
        model.absPath =
            (fs::path(root) / fs::path(paths[i])).string();
        std::ifstream in(model.absPath, std::ios::binary);
        if (!in) {
            model.readable = false;
            return model;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        model.text = buffer.str();
        model.masked = maskSource(model.text);
        model.tokens = tokenize(model.masked.code);
        model.sup = parseSuppressions(model.masked);
        model.includes = scanIncludes(model.text);
        model.tokenFindings =
            lintSource(model.path, model.text, options.lint);
        return model;
    };

    Project project;
    if (options.parallel) {
        project.files =
            parallelMap<FileModel>(paths.size(), parseOne);
    } else {
        project.files.reserve(paths.size());
        for (size_t i = 0; i < paths.size(); ++i)
            project.files.push_back(parseOne(i));
    }
    for (size_t i = 0; i < project.files.size(); ++i)
        project.byPath[project.files[i].path] = i;
    resolveIncludes(project);
    result.filesScanned = project.files.size();

    // --- active-rule selection ----------------------------------------
    std::set<std::string> active;
    if (options.lint.rules.empty()) {
        for (const RuleInfo &info : analyzeRuleCatalog())
            active.insert(info.id);
    } else {
        active.insert(options.lint.rules.begin(),
                      options.lint.rules.end());
    }

    std::vector<Finding> findings;
    for (const std::string &path : missing) {
        findings.push_back(
            {path, 0, kRuleIo, "no such file or directory"});
    }
    for (const FileModel &file : project.files) {
        if (!file.readable) {
            findings.push_back(
                {file.path, 0, kRuleIo, "cannot read file"});
            continue;
        }
        findings.insert(findings.end(), file.tokenFindings.begin(),
                        file.tokenFindings.end());
    }

    Annotations ann = collectAnnotations(project, findings);

    if (active.count(kRuleG1))
        ruleG1(project, findings);
    if (active.count(kRuleK1))
        ruleK1(project, ann, findings);
    if (active.count(kRuleV1) || options.updateLock) {
        std::string lockPath = options.lockPath;
        if (lockPath.empty())
            lockPath = (fs::path(root) / "tools" / "yasim-lint" /
                        "serialization.lock")
                           .string();
        ruleV1(ann, lockPath, options.updateLock, findings);
    }
    if (active.count(kRuleC2))
        ruleC2(project, findings);
    if (active.count(kRuleH1))
        ruleH1(project, options.fix, result.fixedIncludes, findings);

    // --- baseline ------------------------------------------------------
    std::string baselinePath = options.baselinePath;
    if (baselinePath.empty())
        baselinePath = (fs::path(root) / "tools" / "yasim-lint" /
                        "baseline.txt")
                           .string();
    std::ifstream baseIn(baselinePath, std::ios::binary);
    if (baseIn) {
        std::ostringstream buffer;
        buffer << baseIn.rdbuf();
        std::vector<BaselineEntry> baseline;
        std::string error;
        if (!parseBaseline(buffer.str(), baseline, error)) {
            findings.push_back({baselinePath, 0, kRuleIo,
                                "corrupt baseline: " + error});
        } else {
            findings.erase(
                std::remove_if(
                    findings.begin(), findings.end(),
                    [&](const Finding &f) {
                        for (const BaselineEntry &entry : baseline) {
                            if (f.rule == entry.rule &&
                                pathEndsWith(f.file,
                                             entry.pathSuffix))
                                return true;
                        }
                        return false;
                    }),
                findings.end());
        }
    }

    // --- --since filter ------------------------------------------------
    if (!options.sinceFiles.empty()) {
        std::set<std::string> changed;
        for (const std::string &file : options.sinceFiles)
            changed.insert(normalizePath(file));
        findings.erase(
            std::remove_if(findings.begin(), findings.end(),
                           [&](const Finding &f) {
                               if (f.rule == kRuleV1 ||
                                   f.rule == kRuleIo)
                                   return false;
                               return !changed.count(f.file);
                           }),
            findings.end());
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.file == b.file &&
                                          a.line == b.line &&
                                          a.rule == b.rule &&
                                          a.message == b.message;
                               }),
                   findings.end());
    result.findings = std::move(findings);
    return result;
}

std::string
sarifReport(const std::vector<Finding> &findings)
{
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out;
    };

    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n    {\n"
        << "      \"tool\": {\n        \"driver\": {\n"
        << "          \"name\": \"yasim-analyze\",\n"
        << "          \"informationUri\": "
           "\"docs/static-analysis.md\",\n"
        << "          \"rules\": [\n";
    std::vector<RuleInfo> catalog = analyzeRuleCatalog();
    for (size_t i = 0; i < catalog.size(); ++i) {
        out << "            {\"id\": \"" << catalog[i].id
            << "\", \"shortDescription\": {\"text\": \""
            << escape(catalog[i].summary) << "\"}}"
            << (i + 1 < catalog.size() ? "," : "") << "\n";
    }
    out << "          ]\n        }\n      },\n"
        << "      \"results\": [\n";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << "        {\"ruleId\": \"" << escape(f.rule)
            << "\", \"level\": \"error\""
            << ", \"message\": {\"text\": \"" << escape(f.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << escape(f.file) << "\"}, \"region\": {\"startLine\": "
            << std::max(1, f.line) << "}}}]}"
            << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }\n  ]\n}\n";
    return out.str();
}

} // namespace yasim::lint
