/**
 * @file
 * Shared source model for yasim-analyze: comment/string-aware masking,
 * identifier tokenization, suppression/annotation parsing, and
 * function-body extraction.
 *
 * Both the per-file token rules (lint.cc) and the whole-repo semantic
 * passes (analyze.cc) build on this layer, so every rule sees the same
 * view of a translation unit: comments and literals blanked out of the
 * code text (offsets preserved), comment text retained per line for
 * directive parsing.
 *
 * Recognized directives (in comments):
 *   yasim-lint: allow(R1, R2)       suppress rules on this/next line
 *   yasim-lint: allow-file(R1)      suppress for the whole file
 *   yasim-lint: guarded(<mutex>)    C2: this shared state is protected
 *                                   by the named mutex
 *   yasim-lint: keep                H1: this include is intentional
 *   yasim-lint: key-exempt(k1, k2: reason)
 *                                   K1: this config field is deliberately
 *                                   excluded from the named cache keys;
 *                                   the reason is mandatory
 */

#ifndef YASIM_TOOLS_SOURCE_MODEL_HH
#define YASIM_TOOLS_SOURCE_MODEL_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace yasim::lint {

bool isIdentChar(char c);

/** Normalize path separators so suffix matching is portable. */
std::string normalizePath(const std::string &path);

/** Component-boundary suffix match ("x/bench/a.cc" ~ "bench/a.cc"). */
bool pathEndsWith(const std::string &path, const std::string &suffix);

/** One identifier occurrence in the masked code text. */
struct Token
{
    std::string text;
    size_t offset = 0;
    int line = 1;
};

/**
 * The file's text with comments and string/char literals blanked to
 * spaces (newlines preserved), plus the comment text per line for
 * suppression parsing. Offsets into @c code match the original file.
 */
struct MaskedSource
{
    std::string code;
    /** line (1-based) -> concatenated comment text on that line. */
    std::map<int, std::string> comments;
    /** line (1-based) -> true when the line has any code tokens. */
    std::map<int, bool> lineHasCode;
};

MaskedSource maskSource(const std::string &text);

/** All identifier tokens in @p code, in offset order. */
std::vector<Token> tokenize(const std::string &code);

/** First non-whitespace character at or after @p from ('\0' if none). */
char nextSignificant(const std::string &code, size_t from);

/** Position of the first non-whitespace char at/after @p from. */
size_t nextSignificantPos(const std::string &code, size_t from);

/** Last non-whitespace position strictly before @p at (npos if none). */
size_t prevSignificantPos(const std::string &code, size_t at);

/** True when the identifier ending right before @p tokenStart is "std". */
bool qualifiedByStd(const std::string &code, size_t tokenStart);

/** True when the token at @p tokenStart is reached via '.' or '->'. */
bool isMemberAccess(const std::string &code, size_t tokenStart);

/** True when the token is qualified by a non-std scope (Foo::x). */
bool qualifiedByOtherScope(const std::string &code, size_t tokenStart);

/** Per-file suppression/annotation state parsed from comments. */
struct Suppressions
{
    std::set<std::string> fileRules;
    /** line -> rules allowed on that line. */
    std::map<int, std::set<std::string>> lineRules;
    /** line -> cache keys ("result", "warm", "*") the field on that
     *  line is justifiedly exempt from (K1). */
    std::map<int, std::set<std::string>> keyExempt;

    bool allows(const std::string &rule, int line) const
    {
        if (fileRules.count(rule) || fileRules.count("*"))
            return true;
        auto it = lineRules.find(line);
        return it != lineRules.end() &&
               (it->second.count(rule) || it->second.count("*"));
    }

    bool exemptFromKey(const std::string &key, int line) const
    {
        auto it = keyExempt.find(line);
        return it != keyExempt.end() &&
               (it->second.count(key) || it->second.count("*"));
    }
};

Suppressions parseSuppressions(const MaskedSource &masked);

/** One function definition located in a masked source. */
struct FunctionBody
{
    std::string name;
    /** Offsets of the body's braces in the masked code, inclusive. */
    size_t bodyBegin = 0;
    size_t bodyEnd = 0;
    int line = 1; ///< line of the function name
};

/**
 * Locate the bodies of every function definition whose (unqualified)
 * name is in @p names: an identifier followed by '(', a balanced
 * parameter list, optional cv/ref/noexcept/trailing-return tokens, and
 * an opening '{'. Member definitions (Foo::name) match on the final
 * name component.
 */
std::vector<FunctionBody>
findFunctionBodies(const std::string &code,
                   const std::vector<Token> &tokens,
                   const std::set<std::string> &names);

/**
 * Stable 64-bit FNV-1a fingerprint of the non-whitespace characters in
 * [begin, end) of @p code — the drift detector for serialization
 * layouts: any change to the field-access sequence, field widths, or
 * constants inside a save/load body changes the fingerprint, while
 * reformatting and comments do not.
 */
uint64_t fingerprintRange(const std::string &code, size_t begin,
                          size_t end);

} // namespace yasim::lint

#endif // YASIM_TOOLS_SOURCE_MODEL_HH
