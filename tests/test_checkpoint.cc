/** @file Tests for architectural checkpoints. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <sstream>

#include "isa/program_builder.hh"
#include "sim/checkpoint.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "support/failpoint.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"
#include "workloads/suite.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

Program
loopProgram()
{
    ProgramBuilder b("cp");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, 1000);
    b.movi(5, static_cast<int64_t>(heapBase));
    b.bind(top);
    b.st(5, 1, 0);
    b.ld(6, 5, 0);
    b.add(7, 7, 6);
    b.addi(5, 5, 8);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

TEST(Checkpoint, RestoreResumesIdentically)
{
    Program p = loopProgram();

    // Run A straight through; run B via a mid-point checkpoint.
    FunctionalSim a(p);
    a.fastForward(~0ULL);

    FunctionalSim b1(p);
    b1.fastForward(2000);
    Checkpoint cp = Checkpoint::capture(b1);
    EXPECT_EQ(cp.instruction(), 2000u);

    FunctionalSim b2(p);
    b2.fastForward(17); // arbitrary garbage state to overwrite
    cp.restore(b2);
    EXPECT_EQ(b2.instsExecuted(), 2000u);
    b2.fastForward(~0ULL);

    EXPECT_EQ(a.instsExecuted(), b2.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(a.intReg(r), b2.intReg(r)) << "r" << r;
}

TEST(Checkpoint, CapturesHaltState)
{
    Program p = loopProgram();
    FunctionalSim sim(p);
    sim.fastForward(~0ULL);
    ASSERT_TRUE(sim.halted());
    Checkpoint cp = Checkpoint::capture(sim);
    FunctionalSim fresh(p);
    cp.restore(fresh);
    EXPECT_TRUE(fresh.halted());
    EXPECT_EQ(fresh.fastForward(10), 0u);
}

TEST(Checkpoint, FootprintTracksTouchedMemory)
{
    Program p = loopProgram();
    FunctionalSim early(p), late(p);
    early.fastForward(100);
    late.fastForward(4000);
    Checkpoint cp_early = Checkpoint::capture(early);
    Checkpoint cp_late = Checkpoint::capture(late);
    EXPECT_GT(cp_late.footprintBytes(), cp_early.footprintBytes());
}

TEST(Checkpoint, FramedFileRoundTripRestoresIdentically)
{
    failpoint::ScopedSchedule off("");
    fs::path dir = fs::path(::testing::TempDir()) / "yasim_ckpt_file";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "mid.ckpt").string();

    Program p = loopProgram();
    FunctionalSim source(p);
    source.fastForward(2000);
    Checkpoint cp = Checkpoint::capture(source);
    ASSERT_TRUE(cp.saveFile(path));

    Checkpoint loaded = Checkpoint::capture(FunctionalSim(p));
    ASSERT_TRUE(Checkpoint::loadFile(path, loaded));
    EXPECT_EQ(loaded.instruction(), 2000u);

    // Resuming from the round-tripped checkpoint matches a straight
    // run exactly.
    FunctionalSim direct(p);
    direct.fastForward(~0ULL);
    FunctionalSim resumed(p);
    loaded.restore(resumed);
    resumed.fastForward(~0ULL);
    EXPECT_EQ(direct.instsExecuted(), resumed.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(direct.intReg(r), resumed.intReg(r)) << "r" << r;

    fs::remove_all(dir);
}

TEST(Checkpoint, CorruptFileIsQuarantinedAndLoadFails)
{
    failpoint::ScopedSchedule off("");
    fs::path dir = fs::path(::testing::TempDir()) / "yasim_ckpt_rot";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "rot.ckpt").string();

    Program p = loopProgram();
    FunctionalSim source(p);
    source.fastForward(500);
    ASSERT_TRUE(Checkpoint::capture(source).saveFile(path));

    // Flip a payload byte: the frame checksum must catch it, the file
    // must move aside, and loadFile must report failure (the caller
    // regenerates).
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        bytes[bytes.size() / 2] ^= 0x01;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    Checkpoint loaded = Checkpoint::capture(FunctionalSim(p));
    EXPECT_FALSE(Checkpoint::loadFile(path, loaded));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));

    // Missing files fail quietly too (no quarantine to create).
    EXPECT_FALSE(Checkpoint::loadFile(path, loaded));

    fs::remove_all(dir);
}

/** The composite warm blob of @p mem and @p bp, for bit comparisons. */
std::string
warmBlobOf(const MemoryHierarchy &mem, const CombinedPredictor &bp)
{
    std::ostringstream os;
    mem.serializeWarmState(os);
    bp.serializeWarmState(os);
    return os.str();
}

TEST(Checkpoint, UarchSummaryRoundTripsThroughFile)
{
    failpoint::ScopedSchedule off("");
    fs::path dir = fs::path(::testing::TempDir()) / "yasim_ckpt_warm";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "warm.ckpt").string();

    Program p = loopProgram();
    MemoryConfig mcfg;
    BranchPredictorConfig bcfg;
    MemoryHierarchy mem(mcfg);
    CombinedPredictor bp(bcfg);
    FunctionalSim sim(p);
    sim.fastForwardWarm(3000, &mem, &bp);

    // A carrier summary holds only the warmed tables, no arch state.
    Checkpoint cp = Checkpoint::atPosition(3000);
    EXPECT_FALSE(cp.hasArchState());
    EXPECT_FALSE(cp.hasUarch());
    cp.attachUarch(mem, bp, "warm-key");
    EXPECT_TRUE(cp.hasUarch());
    EXPECT_EQ(cp.uarchKey(), "warm-key");
    ASSERT_TRUE(cp.saveFile(path));

    Checkpoint loaded = Checkpoint::atPosition(0);
    ASSERT_TRUE(Checkpoint::loadFile(path, loaded));
    EXPECT_EQ(loaded.instruction(), 3000u);
    EXPECT_FALSE(loaded.hasArchState());
    ASSERT_TRUE(loaded.hasUarch());
    EXPECT_EQ(loaded.uarchKey(), "warm-key");

    // Restoring reproduces the warmed tables bit for bit.
    MemoryHierarchy mem2(mcfg);
    CombinedPredictor bp2(bcfg);
    ASSERT_TRUE(loaded.restoreUarch(mem2, bp2, "warm-key"));
    EXPECT_EQ(warmBlobOf(mem2, bp2), warmBlobOf(mem, bp));

    fs::remove_all(dir);
}

TEST(Checkpoint, UarchRestoreRefusesWrongKeyOrGeometry)
{
    Program p = loopProgram();
    MemoryConfig mcfg;
    BranchPredictorConfig bcfg;
    MemoryHierarchy mem(mcfg);
    CombinedPredictor bp(bcfg);
    FunctionalSim sim(p);
    sim.fastForwardWarm(3000, &mem, &bp);

    Checkpoint cp = Checkpoint::atPosition(3000);
    cp.attachUarch(mem, bp, "warm-key");

    MemoryHierarchy same(mcfg);
    CombinedPredictor samebp(bcfg);
    EXPECT_FALSE(cp.restoreUarch(same, samebp, "other-key"));

    // A differently-shaped hierarchy must fail structural validation
    // rather than silently absorb mismatched tables.
    MemoryConfig narrow = mcfg;
    narrow.l1d.sizeKb = mcfg.l1d.sizeKb / 2;
    MemoryHierarchy wrong(narrow);
    CombinedPredictor wrongbp(bcfg);
    EXPECT_FALSE(cp.restoreUarch(wrong, wrongbp, "warm-key"));
}

TEST(Checkpoint, UarchSummarySurvivesArchCheckpoints)
{
    // Live-mode shard summaries attach warm state to a full
    // architectural capture; both payloads must round-trip together.
    Program p = loopProgram();
    MemoryConfig mcfg;
    BranchPredictorConfig bcfg;
    MemoryHierarchy mem(mcfg);
    CombinedPredictor bp(bcfg);
    FunctionalSim sim(p);
    sim.fastForwardWarm(2000, &mem, &bp);

    Checkpoint cp = Checkpoint::capture(sim);
    cp.attachUarch(mem, bp, "k");
    std::stringstream ss;
    cp.writeBinary(ss);

    Checkpoint back = Checkpoint::atPosition(0);
    ASSERT_TRUE(Checkpoint::readBinary(ss, back));
    EXPECT_TRUE(back.hasArchState());
    ASSERT_TRUE(back.hasUarch());

    FunctionalSim resumed(p);
    back.restore(resumed);
    EXPECT_EQ(resumed.instsExecuted(), 2000u);
    MemoryHierarchy mem2(mcfg);
    CombinedPredictor bp2(bcfg);
    ASSERT_TRUE(back.restoreUarch(mem2, bp2, "k"));
    EXPECT_EQ(warmBlobOf(mem2, bp2), warmBlobOf(mem, bp));
}

TEST(Checkpoint, StaleFormatVersionRejected)
{
    Program p = loopProgram();
    FunctionalSim sim(p);
    sim.fastForward(100);
    std::stringstream ss;
    Checkpoint::capture(sim).writeBinary(ss);

    // Regress the leading version marker to the previous layout: the
    // reader must reject it rather than misparse the v3 trailer.
    std::string bytes = ss.str();
    const uint32_t stale = kCheckpointFormatVersion - 1;
    bytes.replace(0, sizeof(stale),
                  reinterpret_cast<const char *>(&stale), sizeof(stale));
    std::stringstream rotted(bytes);
    Checkpoint out = Checkpoint::atPosition(0);
    EXPECT_FALSE(Checkpoint::readBinary(rotted, out));
}

TEST(CheckpointLibrary, BuildsInOnePass)
{
    Program p = loopProgram();
    CheckpointLibrary lib;
    uint64_t cost = lib.build(p, {500, 2000, 4000});
    EXPECT_EQ(lib.size(), 3u);
    EXPECT_EQ(cost, 4000u); // one pass to the last position
    EXPECT_EQ(lib.at(0).instruction(), 500u);
    EXPECT_EQ(lib.at(2).instruction(), 4000u);
}

TEST(CheckpointLibrary, LatestAtOrBefore)
{
    Program p = loopProgram();
    CheckpointLibrary lib;
    lib.build(p, {500, 2000, 4000});
    EXPECT_EQ(lib.latestAtOrBefore(499), nullptr);
    EXPECT_EQ(lib.latestAtOrBefore(500)->instruction(), 500u);
    EXPECT_EQ(lib.latestAtOrBefore(3999)->instruction(), 2000u);
    EXPECT_EQ(lib.latestAtOrBefore(1 << 30)->instruction(), 4000u);
}

TEST(CheckpointLibrary, RestoreFromLibraryMatchesDirectRun)
{
    SuiteConfig suite;
    suite.referenceInstructions = 150'000;
    Workload w = buildWorkload("gzip", InputSet::Reference, suite);

    CheckpointLibrary lib;
    lib.build(w.program, {50'000});

    FunctionalSim direct(w.program);
    direct.fastForward(60'000);

    FunctionalSim restored(w.program);
    lib.latestAtOrBefore(55'000)->restore(restored);
    restored.fastForward(60'000 - restored.instsExecuted());

    EXPECT_EQ(direct.pc(), restored.pc());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(direct.intReg(r), restored.intReg(r)) << "r" << r;
    EXPECT_EQ(direct.memory().read(heapBase + 64),
              restored.memory().read(heapBase + 64));
}

} // namespace
} // namespace yasim
