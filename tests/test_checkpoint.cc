/** @file Tests for architectural checkpoints. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "isa/program_builder.hh"
#include "sim/checkpoint.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "support/failpoint.hh"
#include "workloads/suite.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

Program
loopProgram()
{
    ProgramBuilder b("cp");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, 1000);
    b.movi(5, static_cast<int64_t>(heapBase));
    b.bind(top);
    b.st(5, 1, 0);
    b.ld(6, 5, 0);
    b.add(7, 7, 6);
    b.addi(5, 5, 8);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

TEST(Checkpoint, RestoreResumesIdentically)
{
    Program p = loopProgram();

    // Run A straight through; run B via a mid-point checkpoint.
    FunctionalSim a(p);
    a.fastForward(~0ULL);

    FunctionalSim b1(p);
    b1.fastForward(2000);
    Checkpoint cp = Checkpoint::capture(b1);
    EXPECT_EQ(cp.instruction(), 2000u);

    FunctionalSim b2(p);
    b2.fastForward(17); // arbitrary garbage state to overwrite
    cp.restore(b2);
    EXPECT_EQ(b2.instsExecuted(), 2000u);
    b2.fastForward(~0ULL);

    EXPECT_EQ(a.instsExecuted(), b2.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(a.intReg(r), b2.intReg(r)) << "r" << r;
}

TEST(Checkpoint, CapturesHaltState)
{
    Program p = loopProgram();
    FunctionalSim sim(p);
    sim.fastForward(~0ULL);
    ASSERT_TRUE(sim.halted());
    Checkpoint cp = Checkpoint::capture(sim);
    FunctionalSim fresh(p);
    cp.restore(fresh);
    EXPECT_TRUE(fresh.halted());
    EXPECT_EQ(fresh.fastForward(10), 0u);
}

TEST(Checkpoint, FootprintTracksTouchedMemory)
{
    Program p = loopProgram();
    FunctionalSim early(p), late(p);
    early.fastForward(100);
    late.fastForward(4000);
    Checkpoint cp_early = Checkpoint::capture(early);
    Checkpoint cp_late = Checkpoint::capture(late);
    EXPECT_GT(cp_late.footprintBytes(), cp_early.footprintBytes());
}

TEST(Checkpoint, FramedFileRoundTripRestoresIdentically)
{
    failpoint::ScopedSchedule off("");
    fs::path dir = fs::path(::testing::TempDir()) / "yasim_ckpt_file";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "mid.ckpt").string();

    Program p = loopProgram();
    FunctionalSim source(p);
    source.fastForward(2000);
    Checkpoint cp = Checkpoint::capture(source);
    ASSERT_TRUE(cp.saveFile(path));

    Checkpoint loaded = Checkpoint::capture(FunctionalSim(p));
    ASSERT_TRUE(Checkpoint::loadFile(path, loaded));
    EXPECT_EQ(loaded.instruction(), 2000u);

    // Resuming from the round-tripped checkpoint matches a straight
    // run exactly.
    FunctionalSim direct(p);
    direct.fastForward(~0ULL);
    FunctionalSim resumed(p);
    loaded.restore(resumed);
    resumed.fastForward(~0ULL);
    EXPECT_EQ(direct.instsExecuted(), resumed.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(direct.intReg(r), resumed.intReg(r)) << "r" << r;

    fs::remove_all(dir);
}

TEST(Checkpoint, CorruptFileIsQuarantinedAndLoadFails)
{
    failpoint::ScopedSchedule off("");
    fs::path dir = fs::path(::testing::TempDir()) / "yasim_ckpt_rot";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "rot.ckpt").string();

    Program p = loopProgram();
    FunctionalSim source(p);
    source.fastForward(500);
    ASSERT_TRUE(Checkpoint::capture(source).saveFile(path));

    // Flip a payload byte: the frame checksum must catch it, the file
    // must move aside, and loadFile must report failure (the caller
    // regenerates).
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        in.close();
        bytes[bytes.size() / 2] ^= 0x01;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    Checkpoint loaded = Checkpoint::capture(FunctionalSim(p));
    EXPECT_FALSE(Checkpoint::loadFile(path, loaded));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));

    // Missing files fail quietly too (no quarantine to create).
    EXPECT_FALSE(Checkpoint::loadFile(path, loaded));

    fs::remove_all(dir);
}

TEST(CheckpointLibrary, BuildsInOnePass)
{
    Program p = loopProgram();
    CheckpointLibrary lib;
    uint64_t cost = lib.build(p, {500, 2000, 4000});
    EXPECT_EQ(lib.size(), 3u);
    EXPECT_EQ(cost, 4000u); // one pass to the last position
    EXPECT_EQ(lib.at(0).instruction(), 500u);
    EXPECT_EQ(lib.at(2).instruction(), 4000u);
}

TEST(CheckpointLibrary, LatestAtOrBefore)
{
    Program p = loopProgram();
    CheckpointLibrary lib;
    lib.build(p, {500, 2000, 4000});
    EXPECT_EQ(lib.latestAtOrBefore(499), nullptr);
    EXPECT_EQ(lib.latestAtOrBefore(500)->instruction(), 500u);
    EXPECT_EQ(lib.latestAtOrBefore(3999)->instruction(), 2000u);
    EXPECT_EQ(lib.latestAtOrBefore(1 << 30)->instruction(), 4000u);
}

TEST(CheckpointLibrary, RestoreFromLibraryMatchesDirectRun)
{
    SuiteConfig suite;
    suite.referenceInstructions = 150'000;
    Workload w = buildWorkload("gzip", InputSet::Reference, suite);

    CheckpointLibrary lib;
    lib.build(w.program, {50'000});

    FunctionalSim direct(w.program);
    direct.fastForward(60'000);

    FunctionalSim restored(w.program);
    lib.latestAtOrBefore(55'000)->restore(restored);
    restored.fastForward(60'000 - restored.instsExecuted());

    EXPECT_EQ(direct.pc(), restored.pc());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(direct.intReg(r), restored.intReg(r)) << "r" << r;
    EXPECT_EQ(direct.memory().read(heapBase + 64),
              restored.memory().read(heapBase + 64));
}

} // namespace
} // namespace yasim
