/** @file Tests for the random-sampling technique [Conte96]. */

#include <gtest/gtest.h>

#include <cmath>

#include "techniques/full_reference.hh"
#include "techniques/random_sampling.hh"
#include "techniques/service.hh"
#include "techniques/smarts.hh"

namespace yasim {
namespace {

TechniqueContext
ctxFor(const std::string &bench)
{
    SuiteConfig suite;
    suite.referenceInstructions = 250'000;
    static DirectService service;
    return TechniqueContext::make(bench, suite, service);
}

TEST(RandomSampling, PositionsAreSortedAndInRange)
{
    TechniqueContext ctx = ctxFor("gzip");
    RandomSampling technique(40, 500, 1000);
    auto positions = technique.samplePositions(ctx);
    ASSERT_EQ(positions.size(), 40u);
    uint64_t prev = 0;
    for (uint64_t p : positions) {
        EXPECT_GE(p, prev);
        EXPECT_LT(p, ctx.referenceLength);
        prev = p;
    }
}

TEST(RandomSampling, DeterministicForFixedSeed)
{
    TechniqueContext ctx = ctxFor("gzip");
    RandomSampling a(20, 500, 1000, 11), b(20, 500, 1000, 11);
    EXPECT_EQ(a.samplePositions(ctx), b.samplePositions(ctx));
    RandomSampling c(20, 500, 1000, 12);
    EXPECT_NE(a.samplePositions(ctx), c.samplePositions(ctx));
}

TEST(RandomSampling, EstimatesWithinReason)
{
    TechniqueContext ctx = ctxFor("gzip");
    SimConfig cfg = architecturalConfig(2);
    TechniqueResult ref = FullReference().run(ctx, cfg);
    TechniqueResult r = RandomSampling(60, 1000, 2000).run(ctx, cfg);
    // Cold-skip sampling is biased, but must land in the ballpark and
    // be far cheaper than the reference.
    EXPECT_NEAR(r.cpi, ref.cpi, ref.cpi * 0.8);
    EXPECT_LT(r.workUnits, ref.workUnits);
    EXPECT_EQ(r.technique, "random");
}

TEST(RandomSampling, MoreWarmupReducesColdBias)
{
    // The Conte96 result: per-sample warm-up buys accuracy.
    TechniqueContext ctx = ctxFor("gzip");
    SimConfig cfg = architecturalConfig(2);
    double ref = FullReference().run(ctx, cfg).cpi;
    double cold = RandomSampling(40, 1000, 0).run(ctx, cfg).cpi;
    double warm = RandomSampling(40, 1000, 8000).run(ctx, cfg).cpi;
    EXPECT_LT(std::fabs(warm - ref), std::fabs(cold - ref));
}

TEST(RandomSampling, SmartsFunctionalWarmingWins)
{
    // SMARTS's functional warming beats cold random sampling at
    // comparable detailed budgets.
    TechniqueContext ctx = ctxFor("vortex");
    SimConfig cfg = architecturalConfig(2);
    double ref = FullReference().run(ctx, cfg).cpi;
    double random_err = std::fabs(
        RandomSampling(50, 1000, 2000).run(ctx, cfg).cpi - ref);
    double smarts_err =
        std::fabs(Smarts(1000, 2000).run(ctx, cfg).cpi - ref);
    EXPECT_LT(smarts_err, random_err);
}

TEST(RandomSampling, PermutationLabel)
{
    RandomSampling r(10, 100, 200);
    EXPECT_EQ(r.permutation(), "N=10 U=100 W=200");
}

} // namespace
} // namespace yasim
