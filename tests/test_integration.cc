/**
 * @file
 * End-to-end integration tests: the paper's headline findings must hold
 * as invariants of the whole pipeline (workloads -> simulator ->
 * techniques -> characterizations). These are the "does the repo
 * reproduce the paper" checks, run at a reduced scale.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/arch_characterization.hh"
#include "core/enhancement_study.hh"
#include "core/pb_characterization.hh"
#include "core/profile_characterization.hh"
#include "core/svat_analysis.hh"
#include "techniques/full_reference.hh"
#include "techniques/reduced_input.hh"
#include "techniques/service.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

namespace yasim {
namespace {

TechniqueContext
ctxFor(const std::string &bench, uint64_t ref = 300'000)
{
    SuiteConfig suite;
    suite.referenceInstructions = ref;
    static DirectService service;
    return TechniqueContext::make(bench, suite, service);
}

double
cpiError(const TechniqueResult &r, const TechniqueResult &ref)
{
    return std::fabs(r.cpi - ref.cpi) / ref.cpi;
}

/**
 * Paper headline: on mcf, the sampling techniques are reference-like
 * and the reduced inputs are a different program.
 */
TEST(PaperInvariants, McfSamplingBeatsReducedByAnOrderOfMagnitude)
{
    TechniqueContext ctx = ctxFor("mcf");
    SimConfig cfg = architecturalConfig(2);
    TechniqueResult ref = FullReference().run(ctx, cfg);

    double smarts_err = cpiError(Smarts(1000, 2000).run(ctx, cfg), ref);
    double simpoint_err = cpiError(
        SimPoint(10.0, 100, 1.0, "multiple 10M").run(ctx, cfg), ref);
    double reduced_err =
        cpiError(ReducedInput(InputSet::Small).run(ctx, cfg), ref);

    EXPECT_LT(smarts_err, 0.10);
    EXPECT_LT(simpoint_err, 0.10);
    EXPECT_GT(reduced_err, 0.50);
}

/** The reduced-input CPI error must flip sign across benchmarks or
 *  configurations somewhere (the paper: "the CPI error does not
 *  trend"), while SMARTS's error stays tiny everywhere. */
TEST(PaperInvariants, SmartsAccurateOnEveryBenchmark)
{
    SimConfig cfg = architecturalConfig(1);
    for (const std::string bench :
         {"gzip", "gcc", "mcf", "perlbmk", "art"}) {
        TechniqueContext ctx = ctxFor(bench);
        TechniqueResult ref = FullReference().run(ctx, cfg);
        double err = cpiError(Smarts(1000, 2000).run(ctx, cfg), ref);
        // gcc's enormous phase variance needs more samples than the
        // scaled budget can hold, so its bound is looser (the paper's
        // +/-3% presumes n = 10,000 on a multi-billion-instruction
        // run).
        EXPECT_LT(err, bench == std::string("gcc") ? 0.20 : 0.12)
            << bench;
    }
}

/** PB characterization: SMARTS's bottleneck ranks are closer to the
 *  reference's than the reduced input's on a memory-bound benchmark. */
TEST(PaperInvariants, PbRanksOrderSmartsAboveReduced)
{
    TechniqueContext ctx = ctxFor("mcf", 200'000);
    PbDesign design = PbDesign::forFactors(numPbFactors(), false);
    PbOutcome ref = runPbDesign(FullReference(), ctx, design);
    PbOutcome smarts = runPbDesign(Smarts(1000, 2000), ctx, design);
    PbOutcome reduced =
        runPbDesign(ReducedInput(InputSet::Small), ctx, design);
    EXPECT_LT(pbDistance(smarts, ref) + 5.0, pbDistance(reduced, ref));
}

/** On mcf's reference run the memory latency must be a top bottleneck;
 *  on the cache-resident small input it must not be. */
TEST(PaperInvariants, McfMemoryLatencyBottleneckOnlyAtReference)
{
    TechniqueContext ctx = ctxFor("mcf", 200'000);
    PbDesign design = PbDesign::forFactors(numPbFactors(), false);
    PbOutcome ref = runPbDesign(FullReference(), ctx, design);
    PbOutcome small =
        runPbDesign(ReducedInput(InputSet::Small), ctx, design);

    int mem_factor = -1;
    for (size_t j = 0; j < pbFactors().size(); ++j)
        if (pbFactors()[j].name == "memory latency (first)")
            mem_factor = static_cast<int>(j);
    ASSERT_GE(mem_factor, 0);
    auto jm = static_cast<size_t>(mem_factor);
    EXPECT_LE(ref.ranks[jm], 3);
    // Ranks among the small input's near-zero effects are noisy, so
    // compare the absolute CPI effects: the reference's main-memory
    // sensitivity must dwarf the cache-resident input's.
    EXPECT_GT(std::fabs(ref.effects[jm]),
              std::fabs(small.effects[jm]) * 3.0);
}

/** Execution profiles: sampling techniques match the reference's BBV
 *  distribution; a prefix window does not (on a phased benchmark). */
TEST(PaperInvariants, ProfilesSeparateSamplingFromTruncation)
{
    TechniqueContext ctx = ctxFor("gcc");
    SimConfig cfg = architecturalConfig(2);
    TechniqueResult ref = FullReference().run(ctx, cfg);
    TechniqueResult smarts = Smarts(1000, 2000).run(ctx, cfg);
    TechniqueResult prefix = RunZ(1000.0).run(ctx, cfg);

    ProfileComparison s = compareProfiles(smarts, ref);
    ProfileComparison p = compareProfiles(prefix, ref);
    EXPECT_TRUE(s.bbv.similar);
    EXPECT_GT(p.bbv.statistic, s.bbv.statistic * 10.0);
}

/** SvAT: SMARTS must dominate every truncated permutation in accuracy
 *  on gcc, and SimPoint must be cheaper than SMARTS. */
TEST(PaperInvariants, SvatOrderings)
{
    TechniqueContext ctx = ctxFor("gcc");
    std::vector<SimConfig> configs = {architecturalConfig(1),
                                      architecturalConfig(2)};
    std::vector<TechniquePtr> techniques = {
        std::make_shared<Smarts>(1000, 2000),
        std::make_shared<SimPoint>(100.0, 10, 0.0, "multiple 100M"),
        std::make_shared<RunZ>(1000.0),
        std::make_shared<FfRunZ>(1000.0, 1000.0),
    };
    auto points = svatAnalysis(ctx, techniques, configs);
    ASSERT_EQ(points.size(), 4u);
    const SvatPoint &smarts = points[0];
    const SvatPoint &simpoint = points[1];
    EXPECT_LT(smarts.cpiDistance, points[2].cpiDistance);
    EXPECT_LT(smarts.cpiDistance, points[3].cpiDistance);
    EXPECT_LT(simpoint.speedPct, smarts.speedPct);
}

/** Enhancement study: SMARTS's apparent TC speedup error on gcc is a
 *  fraction of the truncated techniques'. */
TEST(PaperInvariants, EnhancementErrorsOrder)
{
    TechniqueContext ctx = ctxFor("gcc");
    SimConfig cfg = architecturalConfig(2);
    double ref =
        referenceSpeedup(ctx, cfg, Enhancement::TrivialComputation);
    EnhancementImpact smarts = evaluateEnhancement(
        Smarts(1000, 2000), ctx, cfg, Enhancement::TrivialComputation,
        ref);
    EnhancementImpact prefix = evaluateEnhancement(
        RunZ(1000.0), ctx, cfg, Enhancement::TrivialComputation, ref);
    EXPECT_LT(std::fabs(smarts.speedupError()),
              std::fabs(prefix.speedupError()));
    EXPECT_LT(std::fabs(smarts.speedupError()), 0.04);
}

/** Determinism: the whole pipeline reproduces bit-for-bit. */
TEST(PaperInvariants, EndToEndDeterminism)
{
    TechniqueContext ctx = ctxFor("vortex");
    SimConfig cfg = architecturalConfig(3);
    TechniqueResult a = Smarts(500, 1000).run(ctx, cfg);
    TechniqueResult b = Smarts(500, 1000).run(ctx, cfg);
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    EXPECT_DOUBLE_EQ(a.workUnits, b.workUnits);
    EXPECT_EQ(a.detailed.cycles, b.detailed.cycles);
}

/** Architecture-level characterization orders mcf techniques. */
TEST(PaperInvariants, ArchDistancesOrder)
{
    TechniqueContext ctx = ctxFor("mcf");
    SimConfig cfg = architecturalConfig(2);
    TechniqueResult ref = FullReference().run(ctx, cfg);
    double smarts =
        archDistance(Smarts(1000, 2000).run(ctx, cfg), ref);
    double reduced =
        archDistance(ReducedInput(InputSet::Small).run(ctx, cfg), ref);
    EXPECT_LT(smarts * 5.0, reduced);
}

} // namespace
} // namespace yasim
