/** @file Tests for the set-associative cache and the TLB. */

#include <gtest/gtest.h>

#include "uarch/cache.hh"
#include "uarch/tlb.hh"

namespace yasim {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c("t", CacheConfig{4, 2, 64});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same 64B block
    EXPECT_FALSE(c.access(0x1040)); // next block
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, block 64, size 4KB -> 32 sets. Three blocks in one set.
    Cache c("t", CacheConfig{4, 2, 64});
    const uint64_t set_stride = 32 * 64; // same set every stride
    c.access(0 * set_stride);
    c.access(1 * set_stride);
    c.access(0 * set_stride);      // refresh block 0's recency
    c.access(2 * set_stride);      // evicts block 1 (LRU)
    EXPECT_TRUE(c.probe(0 * set_stride));
    EXPECT_FALSE(c.probe(1 * set_stride));
    EXPECT_TRUE(c.probe(2 * set_stride));
}

TEST(Cache, FullyUsedCapacity)
{
    // Working set equal to capacity must fit (no thrashing).
    Cache c("t", CacheConfig{4, 4, 64});
    const uint64_t blocks = 4 * 1024 / 64;
    for (uint64_t pass = 0; pass < 3; ++pass)
        for (uint64_t i = 0; i < blocks; ++i)
            c.access(i * 64);
    // Only the first pass misses.
    EXPECT_EQ(c.stats().misses, blocks);
}

TEST(Cache, OverCapacityThrashesWhenDirectMapped)
{
    // A working set of 2x capacity with LRU + sequential sweep misses
    // every time.
    Cache c("t", CacheConfig{4, 1, 64});
    const uint64_t blocks = 2 * (4 * 1024 / 64);
    for (uint64_t pass = 0; pass < 3; ++pass)
        for (uint64_t i = 0; i < blocks; ++i)
            c.access(i * 64);
    EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

TEST(Cache, TouchSkipsStats)
{
    Cache c("t", CacheConfig{4, 2, 64});
    c.touch(0x5000);
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.probe(0x5000)); // but the line was allocated
}

TEST(Cache, ResetInvalidates)
{
    Cache c("t", CacheConfig{4, 2, 64});
    c.access(0x1000);
    c.reset();
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, BlockAddressMasksOffset)
{
    Cache c("t", CacheConfig{4, 2, 64});
    EXPECT_EQ(c.blockAddress(0x1234), 0x1200u);
    EXPECT_EQ(c.blockAddress(0x1240), 0x1240u);
}

TEST(Cache, HitRateMetric)
{
    Cache c("t", CacheConfig{4, 2, 64});
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    c.access(0x0);
    EXPECT_DOUBLE_EQ(c.stats().hitRate(), 0.75);
}

TEST(Cache, ReplacementPolicyNames)
{
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Lru), "LRU");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Fifo), "FIFO");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Random),
                 "random");
}

TEST(Cache, FifoIgnoresRecency)
{
    // 2-way set; insert A, B; touch A; insert C.
    // LRU evicts B (A was refreshed); FIFO evicts A (oldest insert).
    const uint64_t stride = 32 * 64;
    CacheConfig geo{4, 2, 64};

    geo.replacement = ReplacementPolicy::Lru;
    Cache lru("lru", geo);
    lru.access(0 * stride);
    lru.access(1 * stride);
    lru.access(0 * stride);
    lru.access(2 * stride);
    EXPECT_TRUE(lru.probe(0 * stride));
    EXPECT_FALSE(lru.probe(1 * stride));

    geo.replacement = ReplacementPolicy::Fifo;
    Cache fifo("fifo", geo);
    fifo.access(0 * stride);
    fifo.access(1 * stride);
    fifo.access(0 * stride);
    fifo.access(2 * stride);
    EXPECT_FALSE(fifo.probe(0 * stride));
    EXPECT_TRUE(fifo.probe(1 * stride));
}

TEST(Cache, RandomReplacementStillCaches)
{
    CacheConfig geo{4, 4, 64};
    geo.replacement = ReplacementPolicy::Random;
    Cache c("rnd", geo);
    // A cache-resident working set must still converge to ~100% hits.
    const uint64_t blocks = 4 * 1024 / 64;
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t i = 0; i < blocks; ++i)
            c.access(i * 64);
    EXPECT_EQ(c.stats().misses, blocks);
    // And is deterministic across identical runs.
    Cache d("rnd2", geo);
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t i = 0; i < blocks; ++i)
            d.access(i * 64);
    EXPECT_EQ(c.stats().misses, d.stats().misses);
}

TEST(Cache, RandomFillsInvalidWaysFirst)
{
    CacheConfig geo{4, 4, 64};
    geo.replacement = ReplacementPolicy::Random;
    Cache c("rnd", geo);
    const uint64_t stride = 16 * 64; // 16 sets -> same set each stride
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * stride);
    // All four ways were invalid, so nothing may have been evicted.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(i * stride)) << i;
}

TEST(Tlb, MissThenHitSamePage)
{
    Tlb tlb("t", 4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1ff8)); // same 4K page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb("t", 2);
    tlb.access(0x1000);  // page 1
    tlb.access(0x2000);  // page 2
    tlb.access(0x1000);  // refresh page 1
    tlb.access(0x3000);  // evicts page 2
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, TouchSkipsStats)
{
    Tlb tlb("t", 4);
    tlb.touch(0x1000);
    EXPECT_EQ(tlb.stats().accesses, 0u);
    EXPECT_TRUE(tlb.access(0x1000));
}

TEST(Tlb, ResetForgets)
{
    Tlb tlb("t", 4);
    tlb.access(0x1000);
    tlb.reset();
    EXPECT_FALSE(tlb.access(0x1000));
}

/** Sweep: a working set of W blocks fits iff capacity >= W. */
class CacheCapacitySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheCapacitySweep, SteadyStateMissBehaviour)
{
    auto [size_kb, assoc] = GetParam();
    Cache c("t", CacheConfig{size_kb, assoc, 64});
    const uint64_t ws_blocks = 8 * 1024 / 64; // 8 KB working set
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t i = 0; i < ws_blocks; ++i)
            c.access(i * 64);
    double miss_rate = 1.0 - c.stats().hitRate();
    if (size_kb >= 8) {
        EXPECT_LT(miss_rate, 0.30) << size_kb << "KB/" << assoc;
    } else {
        EXPECT_GT(miss_rate, 0.90) << size_kb << "KB/" << assoc;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCapacitySweep,
    ::testing::Values(std::make_tuple(4u, 1u), std::make_tuple(4u, 4u),
                      std::make_tuple(8u, 2u), std::make_tuple(16u, 4u),
                      std::make_tuple(32u, 8u)));

} // namespace
} // namespace yasim
