/**
 * @file
 * Tests for yasim-lint: every rule must fire on its seeded fixture,
 * every suppression mechanism must silence it, and the repository's
 * own sources must lint clean (the dogfood test mirrors the
 * lint_repo_clean ctest so a regression is caught even when only the
 * unit binary runs).
 *
 * Fixtures live in tests/lint_fixtures/ with paths shaped like the
 * real tree (src/..., bench/...) so the linter's layer classification
 * and suffix allowlist see what they would see in production. The
 * tree walker skips lint_fixtures directories; tests hand the linter
 * each file directly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hh"

namespace yasim::lint {
namespace {

std::string
fixture(const std::string &rel)
{
    return std::string(YASIM_LINT_FIXTURE_DIR) + "/" + rel;
}

std::vector<std::string>
rulesOf(const std::vector<Finding> &findings)
{
    std::vector<std::string> rules;
    for (const Finding &f : findings)
        rules.push_back(f.rule);
    return rules;
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(),
        [&](const Finding &f) { return f.rule == rule; }));
}

TEST(LintCatalog, ListsEveryRule)
{
    auto catalog = ruleCatalog();
    std::vector<std::string> ids;
    for (const RuleInfo &info : catalog)
        ids.emplace_back(info.id);
    EXPECT_EQ(ids, (std::vector<std::string>{"D1", "D2", "L1", "L2",
                                             "S1", "S2"}));
}

TEST(LintD1, FlagsEntropyAndHonoursLineSuppressions)
{
    auto findings = lintFile(fixture("src/sim/entropy_sources.cc"));
    // rand(), std::random_device, steady_clock::now(), time() fire;
    // the two suppressed rand() calls and the mentions inside comments
    // and string literals do not.
    EXPECT_EQ(countRule(findings, "D1"), 4) << testing::PrintToString(
        rulesOf(findings));
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "D1");
        EXPECT_NE(f.line, 23); // allow(D1) on the preceding line
        EXPECT_NE(f.line, 25); // trailing allow(D1)
    }
}

TEST(LintD2, FlagsUnorderedIterationButNotOrderedView)
{
    auto findings = lintFile(fixture("src/stats/unordered_emit.cc"));
    // The parameter loop and the local-variable loop fire; the
    // orderedView loop is the sanctioned pattern.
    EXPECT_EQ(countRule(findings, "D2"), 2) << testing::PrintToString(
        rulesOf(findings));
}

TEST(LintL1, FlagsFunctionalSimInTechniques)
{
    auto findings = lintFile(fixture("src/techniques/raw_functional.cc"));
    EXPECT_GE(countRule(findings, "L1"), 1);
}

TEST(LintL2, FlagsEngineInternalsInBench)
{
    auto findings = lintFile(fixture("bench/engine_internals.cc"));
    // The TraceStore use fires on tokens alone; the thread_pool.hh
    // include is rule G1's job now (include-graph reachability in
    // analyze.cc), covered by the analyzer fixtures.
    EXPECT_GE(countRule(findings, "L2"), 1) << testing::PrintToString(
        rulesOf(findings));
}

TEST(LintL1, LayerRulesIgnoreOtherLayers)
{
    // The same FunctionalSim use outside src/techniques or src/core is
    // not an L1 violation (and outside bench/, not an L2 one either).
    auto findings = lintFile(fixture("src/techniques/raw_functional.cc"),
                             {{"L2"}, true, {}});
    EXPECT_TRUE(findings.empty());
}

TEST(LintS1, RequiresVersionMarkerWithRawSerialization)
{
    auto unversioned =
        lintFile(fixture("src/sim/unversioned_serial.cc"));
    EXPECT_EQ(countRule(unversioned, "S1"), 1);

    auto versioned = lintFile(fixture("src/sim/versioned_serial.cc"));
    EXPECT_TRUE(versioned.empty())
        << testing::PrintToString(rulesOf(versioned));
}

TEST(LintS2, FlagsRawPersistenceInLibraryCode)
{
    auto findings = lintFile(fixture("src/engine/raw_persist.cc"));
    EXPECT_EQ(countRule(findings, "S2"), 1) << testing::PrintToString(
        rulesOf(findings));
}

TEST(LintS2, LineSuppressionSilencesThePublishSite)
{
    auto findings =
        lintFile(fixture("src/engine/raw_persist_allowed.cc"));
    EXPECT_TRUE(findings.empty())
        << testing::PrintToString(rulesOf(findings));
}

TEST(LintS2, IgnoresCodeOutsideSrc)
{
    // The same shape outside src/ (a tool, a test) is not S2's
    // business.
    const std::string body = "#include <fstream>\n"
                             "void f() {\n"
                             "    std::ofstream out(\"x.tmp\");\n"
                             "    rename(\"x.tmp\", \"x\");\n"
                             "}\n";
    EXPECT_TRUE(lintSource("tools/yasim-lint/main.cc", body).empty());
    EXPECT_EQ(countRule(lintSource("src/engine/fake.cc", body), "S2"),
              1);
}

TEST(LintS2, ArtifactIoIsTheSanctionedSeam)
{
    const std::string path = fixture("src/support/artifact_io.cc");

    auto with = lintFile(path);
    EXPECT_TRUE(with.empty()) << testing::PrintToString(rulesOf(with));

    Options raw;
    raw.builtinAllowlist = false;
    auto without = lintFile(path, raw);
    EXPECT_EQ(countRule(without, "S2"), 1)
        << testing::PrintToString(rulesOf(without));
}

TEST(LintSuppression, AllowFileSilencesWholeFile)
{
    auto findings = lintFile(fixture("src/stats/allow_file.cc"));
    EXPECT_TRUE(findings.empty())
        << testing::PrintToString(rulesOf(findings));
}

TEST(LintSuppression, CleanFileStaysClean)
{
    auto findings = lintFile(fixture("src/sim/clean.cc"));
    EXPECT_TRUE(findings.empty())
        << testing::PrintToString(rulesOf(findings));
}

TEST(LintAllowlist, BuiltinSeamFileIsExemptUntilDisabled)
{
    const std::string path = fixture("bench/microbench.cc");

    auto with = lintFile(path);
    EXPECT_TRUE(with.empty()) << testing::PrintToString(rulesOf(with));

    Options raw;
    raw.builtinAllowlist = false;
    auto without = lintFile(path, raw);
    EXPECT_GE(countRule(without, "D1"), 1);
    EXPECT_GE(countRule(without, "L2"), 1);
}

TEST(LintAllowlist, ExtraAllowEntriesExtendTheList)
{
    Options opts;
    opts.extraAllow = {"src/sim/entropy_sources.cc:D1"};
    auto findings =
        lintFile(fixture("src/sim/entropy_sources.cc"), opts);
    EXPECT_TRUE(findings.empty())
        << testing::PrintToString(rulesOf(findings));
}

TEST(LintOptions, RuleFilterRunsOnlySelectedRules)
{
    Options opts;
    opts.rules = {"D2"};
    auto findings =
        lintFile(fixture("src/sim/entropy_sources.cc"), opts);
    EXPECT_TRUE(findings.empty());

    opts.rules = {"D1"};
    findings = lintFile(fixture("src/sim/entropy_sources.cc"), opts);
    EXPECT_EQ(countRule(findings, "D1"), 4);
}

TEST(LintMasking, CommentsAndStringsAreInvisible)
{
    const std::string src = "// rand()\n"
                            "/* std::random_device dev; */\n"
                            "const char *s = \"time(nullptr)\";\n"
                            "const char *r = R\"(rand())\";\n";
    auto findings = lintSource("src/sim/fake.cc", src);
    EXPECT_TRUE(findings.empty())
        << testing::PrintToString(rulesOf(findings));
}

TEST(LintMasking, CodeAfterCommentStillFires)
{
    const std::string src = "/* harmless */ int x = rand();\n";
    auto findings = lintSource("src/sim/fake.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "D1");
    EXPECT_EQ(findings[0].line, 1);
}

TEST(LintIo, UnreadableFileReportsIoFinding)
{
    auto findings = lintFile(fixture("does/not/exist.cc"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "IO");
}

TEST(LintTree, SkipsFixtureDirectoriesAndSortsOutput)
{
    // Walking tests/ must not surface the deliberately-violating
    // fixtures under tests/lint_fixtures/.
    auto findings =
        lintTree({std::string(YASIM_SOURCE_DIR) + "/tests"});
    EXPECT_TRUE(findings.empty())
        << testing::PrintToString(rulesOf(findings));
}

/** Dogfood: the real tree lints clean, same as the lint_repo_clean
 *  ctest that runs the CLI. */
TEST(LintRepo, SourcesBenchAndTestsAreClean)
{
    const std::string root(YASIM_SOURCE_DIR);
    auto findings = lintTree(
        {root + "/src", root + "/bench", root + "/tests"});
    std::string report;
    for (const Finding &f : findings)
        report += f.file + ":" + std::to_string(f.line) + " [" +
                  f.rule + "] " + f.message + "\n";
    EXPECT_TRUE(findings.empty()) << report;
}

} // namespace
} // namespace yasim::lint
