/** @file Tests for Hadamard construction and Plackett-Burman designs. */

#include <gtest/gtest.h>

#include "stats/distance.hh"
#include "stats/plackett_burman.hh"

namespace yasim {
namespace {

/** Hadamard property sweep over every order the library constructs. */
class HadamardSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(HadamardSweep, RowsAreOrthogonal)
{
    size_t n = GetParam();
    auto h = hadamardMatrix(n);
    ASSERT_EQ(h.size(), n);
    for (const auto &row : h) {
        ASSERT_EQ(row.size(), n);
        for (int v : row)
            ASSERT_TRUE(v == 1 || v == -1);
    }
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = a; b < n; ++b) {
            long dot = 0;
            for (size_t j = 0; j < n; ++j)
                dot += h[a][j] * h[b][j];
            EXPECT_EQ(dot, a == b ? static_cast<long>(n) : 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, HadamardSweep,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 20, 24,
                                           32, 44, 48, 64, 80));

TEST(PbDesign, FortyThreeFactorsUse44Runs)
{
    PbDesign design = PbDesign::forFactors(43, /*foldover=*/false);
    EXPECT_EQ(design.numRuns(), 44u);
    EXPECT_EQ(design.numFactors(), 43u);
    EXPECT_TRUE(design.isOrthogonal());
}

TEST(PbDesign, FoldoverDoublesRuns)
{
    PbDesign design = PbDesign::forFactors(43, /*foldover=*/true);
    EXPECT_EQ(design.numRuns(), 88u);
    EXPECT_TRUE(design.isOrthogonal());
    // The mirrored half must flip every level.
    for (size_t j = 0; j < design.numFactors(); ++j)
        for (size_t i = 0; i < 44; ++i)
            EXPECT_EQ(design.level(i, j), -design.level(i + 44, j));
}

TEST(PbDesign, BalancedColumns)
{
    PbDesign design = PbDesign::forFactors(43, false);
    for (size_t j = 0; j < design.numFactors(); ++j) {
        long sum = 0;
        for (size_t i = 0; i < design.numRuns(); ++i)
            sum += design.level(i, j);
        EXPECT_EQ(sum, 0) << "factor " << j;
    }
}

TEST(PbDesign, RecoversPlantedMainEffects)
{
    // Response = 10*x0 - 4*x3 + 1*x7 (+ no noise). The PB effects must
    // recover each coefficient (doubled: effect = high mean - low mean
    // = 2 * coefficient for +/-1 coding).
    PbDesign design = PbDesign::forFactors(43, false);
    std::vector<double> responses(design.numRuns());
    for (size_t i = 0; i < design.numRuns(); ++i) {
        responses[i] = 100.0 + 10.0 * design.level(i, 0) -
                       4.0 * design.level(i, 3) +
                       1.0 * design.level(i, 7);
    }
    std::vector<double> effects = design.computeEffects(responses);
    EXPECT_NEAR(effects[0], 20.0, 1e-9);
    EXPECT_NEAR(effects[3], -8.0, 1e-9);
    EXPECT_NEAR(effects[7], 2.0, 1e-9);
    for (size_t j = 0; j < effects.size(); ++j) {
        if (j == 0 || j == 3 || j == 7)
            continue;
        EXPECT_NEAR(effects[j], 0.0, 1e-9) << "factor " << j;
    }

    // Rank order must follow the planted magnitudes.
    std::vector<int> ranks = rankByMagnitude(effects);
    EXPECT_EQ(ranks[0], 1);
    EXPECT_EQ(ranks[3], 2);
    EXPECT_EQ(ranks[7], 3);
}

TEST(PbDesign, FoldoverCancelsTwoFactorInteractions)
{
    // Response with a pure two-factor interaction x0*x1. The folded
    // design's main effects must not alias it.
    PbDesign design = PbDesign::forFactors(43, true);
    std::vector<double> responses(design.numRuns());
    for (size_t i = 0; i < design.numRuns(); ++i) {
        responses[i] = 5.0 * design.level(i, 0) * design.level(i, 1);
    }
    std::vector<double> effects = design.computeEffects(responses);
    for (size_t j = 0; j < effects.size(); ++j)
        EXPECT_NEAR(effects[j], 0.0, 1e-9) << "factor " << j;
}

TEST(PbDesign, SmallFactorCounts)
{
    PbDesign d3 = PbDesign::forFactors(3, false);
    EXPECT_EQ(d3.numRuns(), 4u);
    EXPECT_EQ(d3.numFactors(), 3u);
    PbDesign d7 = PbDesign::forFactors(7, false);
    EXPECT_EQ(d7.numRuns(), 8u);
}

} // namespace
} // namespace yasim
