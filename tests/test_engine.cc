/**
 * @file
 * Tests for the ExperimentEngine: cache-key construction, memoization
 * and its counters, the on-disk result cache (bit-identical
 * round-trips), in-flight deduplication, and pooled prefetch
 * determinism.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "engine/cache_key.hh"
#include "engine/engine.hh"
#include "engine/result_io.hh"
#include "sim/trace.hh"
#include "support/artifact_io.hh"
#include "support/failpoint.hh"
#include "techniques/full_reference.hh"
#include "techniques/reduced_input.hh"
#include "techniques/service.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kRefInsts = 150'000;

TechniqueContext
directCtx(const std::string &bench, uint64_t ref = kRefInsts)
{
    SuiteConfig suite;
    suite.referenceInstructions = ref;
    static DirectService service;
    return TechniqueContext::make(bench, suite, service);
}

/** Bitwise double equality — the disk cache promises bit-identical. */
bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
bitEq(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!bitEq(a[i], b[i]))
            return false;
    return true;
}

/** Full bit-level equality of two technique results. */
void
expectBitIdentical(const TechniqueResult &a, const TechniqueResult &b)
{
    EXPECT_EQ(a.technique, b.technique);
    EXPECT_EQ(a.permutation, b.permutation);
    EXPECT_TRUE(bitEq(a.cpi, b.cpi));
    EXPECT_TRUE(bitEq(a.metrics, b.metrics));
    EXPECT_TRUE(bitEq(a.bbef, b.bbef));
    EXPECT_TRUE(bitEq(a.bbv, b.bbv));
    EXPECT_TRUE(bitEq(a.workUnits, b.workUnits));
    EXPECT_EQ(a.detailedInsts, b.detailedInsts);
    EXPECT_EQ(a.detailed.instructions, b.detailed.instructions);
    EXPECT_EQ(a.detailed.cycles, b.detailed.cycles);
}

/** A scratch cache directory wiped before and after each use. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
    std::string str() const { return dir.string(); }

  private:
    fs::path dir;
};

/** Flip one byte in the middle of @p path (simulated bit rot). */
void
flipMiddleByte(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

/**
 * Assert that every published artifact in @p dir verifies: quarantine
 * leftovers and in-flight temps are ignored, everything else must
 * parse under its extension's (magic, version) pair. This is the
 * crash-safety invariant — a cache directory is always empty-or-valid.
 */
void
expectDirEmptyOrValid(const std::string &dir)
{
    failpoint::ScopedSchedule off("");
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos ||
            name.find(".corrupt") != std::string::npos)
            continue;
        const std::string ext = entry.path().extension().string();
        ArtifactReadResult read;
        if (ext == ".result") {
            read = readArtifact(entry.path().string(), "yasim-result",
                                kCacheFormatVersion);
        } else if (ext == ".reflen") {
            read = readArtifact(entry.path().string(), "yasim-reflen",
                                kCacheFormatVersion);
        } else if (ext == ".trace") {
            read = readArtifact(entry.path().string(), "yasim-trace",
                                kTraceFormatVersion);
        } else {
            ADD_FAILURE() << "unexpected cache file " << name;
            continue;
        }
        EXPECT_EQ(read.status, ArtifactStatus::Ok)
            << name << ": " << read.error;
    }
}

// ---------------------------------------------------------------- keys

TEST(CacheKey, StableAcrossCalls)
{
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);
    EXPECT_EQ(resultCacheKey(smarts, ctx, config),
              resultCacheKey(smarts, ctx, config));
}

TEST(CacheKey, EveryInputChangesTheKey)
{
    TechniqueContext gzip = directCtx("gzip");
    TechniqueContext mcf = directCtx("mcf");
    TechniqueContext longer = directCtx("gzip", kRefInsts * 2);
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);
    const std::string base = resultCacheKey(smarts, gzip, config);

    // Benchmark and suite scaling.
    EXPECT_NE(base, resultCacheKey(smarts, mcf, config));
    EXPECT_NE(base, resultCacheKey(smarts, longer, config));

    // Technique and technique parameters.
    EXPECT_NE(base, resultCacheKey(Smarts(1000, 4000), gzip, config));
    EXPECT_NE(base, resultCacheKey(FullReference(), gzip, config));

    // Any machine-configuration field.
    SimConfig bigger_l2 = config;
    bigger_l2.mem.l2.sizeKb *= 2;
    EXPECT_NE(base, resultCacheKey(smarts, gzip, bigger_l2));
}

TEST(CacheKey, ConfigDisplayNameIsExcluded)
{
    TechniqueContext ctx = directCtx("gzip");
    Smarts smarts(1000, 2000);
    SimConfig a = architecturalConfig(2);
    SimConfig b = a;
    b.name = "same machine, different label";
    EXPECT_EQ(resultCacheKey(smarts, ctx, a),
              resultCacheKey(smarts, ctx, b));
}

TEST(CacheKey, TechniqueDisplayLabelIsExcluded)
{
    // Two SimPoints that differ only in their display label are the
    // same experiment and must share a key.
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(2);
    SimPoint a(10.0, 30, 1.0, "multiple 10M");
    SimPoint b(10.0, 30, 1.0, "another label");
    EXPECT_NE(a.permutation(), b.permutation());
    EXPECT_EQ(resultCacheKey(a, ctx, config),
              resultCacheKey(b, ctx, config));
}

TEST(CacheKey, KeyMentionsFormatVersionAndBenchmark)
{
    TechniqueContext ctx = directCtx("gzip");
    std::string key =
        resultCacheKey(Smarts(1000, 2000), ctx, architecturalConfig(1));
    EXPECT_NE(key.find("gzip"), std::string::npos);
    EXPECT_NE(key.find(std::to_string(kCacheFormatVersion)),
              std::string::npos);
}

TEST(CacheKey, DigestIs32HexAndContentSensitive)
{
    std::string a = cacheDigest("some key text");
    std::string b = cacheDigest("some key texu");
    EXPECT_EQ(a.size(), 32u);
    EXPECT_TRUE(a.find_first_not_of("0123456789abcdef") ==
                std::string::npos);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, cacheDigest("some key text"));
}

// ---------------------------------------------------------- result I/O

TEST(ResultIo, RoundTripsBitIdentically)
{
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);
    TechniqueResult fresh = smarts.run(ctx, config);
    const std::string key = resultCacheKey(smarts, ctx, config);

    std::stringstream buffer;
    writeResult(buffer, key, fresh);
    TechniqueResult loaded;
    ASSERT_TRUE(readResult(buffer, key, loaded));
    expectBitIdentical(loaded, fresh);
}

TEST(ResultIo, RejectsWrongKeyAndTruncation)
{
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);
    TechniqueResult fresh = smarts.run(ctx, config);
    const std::string key = resultCacheKey(smarts, ctx, config);

    std::stringstream buffer;
    writeResult(buffer, key, fresh);
    TechniqueResult loaded;
    std::stringstream wrong(buffer.str());
    EXPECT_FALSE(readResult(wrong, key + "X", loaded));

    std::string text = buffer.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_FALSE(readResult(truncated, key, loaded));
}

TEST(ResultIo, ReferenceLengthRoundTrip)
{
    std::stringstream buffer;
    writeReferenceLength(buffer, "ref-key", 123'456'789ULL);
    uint64_t length = 0;
    ASSERT_TRUE(readReferenceLength(buffer, "ref-key", length));
    EXPECT_EQ(length, 123'456'789ULL);

    std::stringstream again(buffer.str());
    again.seekg(0);
    EXPECT_FALSE(readReferenceLength(again, "other-key", length));
}

TEST(ResultIo, RejectsTrailingGarbage)
{
    // A well-formed payload followed by extra bytes is not something
    // writeResult ever produced — it must read as a miss, never as
    // "close enough" (an interrupted overwrite looks exactly like
    // this).
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);
    TechniqueResult fresh = smarts.run(ctx, config);
    const std::string key = resultCacheKey(smarts, ctx, config);

    std::stringstream buffer;
    writeResult(buffer, key, fresh);
    TechniqueResult loaded;
    std::stringstream tainted(buffer.str() + "zombie bytes\n");
    EXPECT_FALSE(readResult(tainted, key, loaded));

    std::stringstream reflen;
    writeReferenceLength(reflen, "ref-key", 42);
    uint64_t length = 0;
    std::stringstream tainted_len(reflen.str() + "extra");
    EXPECT_FALSE(readReferenceLength(tainted_len, "ref-key", length));
}

// ------------------------------------------------------------- memoing

TEST(Engine, MemoizesRepeatedRuns)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    TechniqueResult first = engine.run(smarts, ctx, config);
    TechniqueResult second = engine.run(smarts, ctx, config);
    expectBitIdentical(first, second);

    EngineCounters ctr = engine.counters();
    EXPECT_EQ(ctr.runsExecuted, 1u);
    EXPECT_EQ(ctr.memoMisses, 1u);
    EXPECT_EQ(ctr.memoHits, 1u);
    EXPECT_GT(ctr.workUnitsSaved, 0.0);
}

TEST(Engine, MatchesDirectServiceBitForBit)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ectx = engine.context("mcf", suite);
    TechniqueContext dctx = directCtx("mcf");
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    TechniqueResult pooled = engine.run(smarts, ectx, config);
    TechniqueResult direct = smarts.run(dctx, config);
    expectBitIdentical(pooled, direct);
}

TEST(Engine, RestampsDisplayLabelsOnSharedKeys)
{
    // a and b share a cache key (labels are excluded), but each caller
    // must get its own technique's labels back.
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    SimConfig config = architecturalConfig(1);
    SimPoint a(10.0, 30, 1.0, "multiple 10M");
    SimPoint b(10.0, 30, 1.0, "another label");

    TechniqueResult ra = engine.run(a, ctx, config);
    TechniqueResult rb = engine.run(b, ctx, config);
    EXPECT_EQ(engine.counters().runsExecuted, 1u);
    EXPECT_EQ(ra.permutation, "multiple 10M");
    EXPECT_EQ(rb.permutation, "another label");
    EXPECT_TRUE(bitEq(ra.cpi, rb.cpi));
}

TEST(Engine, ConcurrentRequestsCollapseOntoOneRun)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    SimConfig config = architecturalConfig(2);
    FullReference reference;

    std::vector<TechniqueResult> results(4);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t)
        threads.emplace_back([&, t] {
            results[t] = engine.run(reference, ctx, config);
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(engine.counters().runsExecuted, 1u);
    for (size_t t = 1; t < results.size(); ++t)
        expectBitIdentical(results[t], results[0]);
}

// ----------------------------------------------------------- the disk

TEST(Engine, DiskCacheRoundTripsAcrossEngines)
{
    // Pin the schedule: the exact counters below assume no injected
    // faults even when the suite runs under a CI YASIM_FAILPOINTS job.
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_disk_roundtrip");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    TechniqueResult fresh;
    {
        ExperimentEngine warm({.cacheDir = scratch.str()});
        fresh = warm.run(smarts, warm.context("gzip", suite), config);
        EXPECT_EQ(warm.counters().runsExecuted, 1u);
        EXPECT_GE(warm.counters().diskWrites, 1u);
    }

    // A second engine over the same directory simulates nothing: the
    // result comes from the disk cache and the reference length from
    // the trace store (whose trace also loads from disk, not a fresh
    // interpretation).
    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult loaded =
        cold.run(smarts, cold.context("gzip", suite), config);
    EngineCounters ctr = cold.counters();
    EXPECT_EQ(ctr.runsExecuted, 0u);
    EXPECT_GE(ctr.diskHits, 1u);
    EXPECT_GE(ctr.refLengthFromTrace, 1u);
    ASSERT_NE(cold.traceStore(), nullptr);
    EXPECT_EQ(cold.traceStore()->counters().recordings, 0u);
    EXPECT_GE(cold.traceStore()->counters().diskLoads, 1u);
    expectBitIdentical(loaded, fresh);
}

TEST(Engine, RefLengthDiskCacheServesTracelessEngines)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_reflen_roundtrip");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;

    uint64_t measured = 0;
    {
        ExperimentEngine warm(
            {.cacheDir = scratch.str(), .traces = false});
        measured = warm.referenceLength("gzip", suite);
        EXPECT_EQ(warm.counters().refLengthMisses, 1u);
    }

    ExperimentEngine cold({.cacheDir = scratch.str(), .traces = false});
    EXPECT_EQ(cold.traceStore(), nullptr);
    EXPECT_EQ(cold.referenceLength("gzip", suite), measured);
    EXPECT_GE(cold.counters().refLengthDiskHits, 1u);
}

TEST(Engine, CorruptDiskFilesReadAsMisses)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_disk_corrupt");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    {
        ExperimentEngine warm({.cacheDir = scratch.str()});
        warm.run(smarts, warm.context("gzip", suite), config);
    }
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.is_regular_file()) {
            std::ofstream out(entry.path(), std::ios::trunc);
            out << "not a cache file\n";
        }

    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult rerun =
        cold.run(smarts, cold.context("gzip", suite), config);
    EXPECT_EQ(cold.counters().runsExecuted, 1u);
    EXPECT_GT(rerun.workUnits, 0.0);
}

// ---------------------------------------------------------- robustness

TEST(EngineRobustness, SelfHealsCorruptEntriesAndCountsThem)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_self_heal");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    TechniqueResult fresh;
    {
        ExperimentEngine warm({.cacheDir = scratch.str()});
        fresh = warm.run(smarts, warm.context("gzip", suite), config);
    }
    int rotted = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.path().extension() == ".result") {
            flipMiddleByte(entry.path());
            ++rotted;
        }
    ASSERT_GE(rotted, 1);

    // The cold engine quarantines the rotten entry, recomputes
    // bit-identically, counts the corruption, and republishes.
    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult healed =
        cold.run(smarts, cold.context("gzip", suite), config);
    expectBitIdentical(healed, fresh);
    EngineCounters ctr = cold.counters();
    EXPECT_EQ(ctr.runsExecuted, 1u);
    EXPECT_GE(ctr.cacheCorrupt, 1u);
    EXPECT_GE(ctr.diskWrites, 1u);

    int quarantined = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.path().string().ends_with(".corrupt"))
            ++quarantined;
    EXPECT_GE(quarantined, 1);
    expectDirEmptyOrValid(scratch.str());
}

TEST(EngineRobustness, TraceQuarantineRecordsBitIdenticallyAgain)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_trace_heal");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    TechniqueResult fresh;
    {
        ExperimentEngine warm({.cacheDir = scratch.str()});
        fresh = warm.run(smarts, warm.context("gzip", suite), config);
    }
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.path().extension() == ".result" ||
            entry.path().extension() == ".trace")
            flipMiddleByte(entry.path());

    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult healed =
        cold.run(smarts, cold.context("gzip", suite), config);
    expectBitIdentical(healed, fresh);
    ASSERT_NE(cold.traceStore(), nullptr);
    TraceCounters t = cold.traceStore()->counters();
    EXPECT_GE(t.quarantined, 1u);
    EXPECT_EQ(t.recordings, 1u);
    EXPECT_EQ(t.diskLoads, 0u);
}

TEST(EngineRobustness, TransientReadsRetryAndStillHitTheCache)
{
    ScratchDir scratch("yasim_engine_transient");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    TechniqueResult fresh;
    {
        failpoint::ScopedSchedule off("");
        ExperimentEngine warm({.cacheDir = scratch.str()});
        fresh = warm.run(smarts, warm.context("gzip", suite), config);
    }

    // The very first open fails once; the bounded retry succeeds, so
    // the cache still serves everything without a single simulation.
    failpoint::ScopedSchedule sched("io.open.transient=after0");
    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult loaded =
        cold.run(smarts, cold.context("gzip", suite), config);
    expectBitIdentical(loaded, fresh);
    EXPECT_EQ(cold.counters().runsExecuted, 0u);
    ASSERT_NE(cold.traceStore(), nullptr);
    EXPECT_GE(cold.counters().ioRetries +
                  cold.traceStore()->counters().ioRetries,
              1u);
}

TEST(EngineRobustness, UnreadableEntriesAreCountedNotFatal)
{
    ScratchDir scratch("yasim_engine_unreadable");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    TechniqueResult fresh;
    {
        failpoint::ScopedSchedule off("");
        ExperimentEngine warm(
            {.cacheDir = scratch.str(), .traces = false});
        fresh = warm.run(smarts, warm.context("gzip", suite), config);
    }

    // Every open fails even after retries: reads degrade to misses,
    // writes are dropped with a warning, the run still completes with
    // bit-identical results (the unreadable-entry satellite fix).
    failpoint::ScopedSchedule sched("io.open.transient=always");
    ExperimentEngine cold({.cacheDir = scratch.str(), .traces = false});
    TechniqueResult recomputed =
        cold.run(smarts, cold.context("gzip", suite), config);
    expectBitIdentical(recomputed, fresh);
    EngineCounters ctr = cold.counters();
    EXPECT_EQ(ctr.runsExecuted, 1u);
    EXPECT_GE(ctr.cacheUnreadable, 1u);
    EXPECT_EQ(ctr.diskHits, 0u);
}

TEST(EngineRobustness, CacheBudgetEvictsOldestEntries)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_budget");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    Smarts smarts(500, 1000);

    // A one-byte budget forces an eviction sweep after every publish;
    // only the newest artifact may survive each sweep.
    ExperimentEngine engine({.cacheDir = scratch.str(),
                             .traces = false,
                             .cacheBudgetBytes = 1});
    TechniqueContext ctx = engine.context("gzip", suite);
    engine.run(smarts, ctx, architecturalConfig(1));
    engine.run(smarts, ctx, architecturalConfig(2));
    EXPECT_GE(engine.counters().budgetEvictions, 2u);

    int files = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1);
    expectDirEmptyOrValid(scratch.str());
}

TEST(EngineRobustness, ConcurrentEnginesShareOneCacheDir)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_engine_shared_dir");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    // Four independent engines (four "driver processes" in miniature)
    // race over one cache directory: every result must be
    // bit-identical and the directory must end valid — the atomic
    // temp+rename publish means no reader ever sees a torn artifact.
    std::vector<TechniqueResult> results(4);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t)
        threads.emplace_back([&, t] {
            ExperimentEngine engine({.cacheDir = scratch.str()});
            results[t] = engine.run(
                smarts, engine.context("gzip", suite), config);
        });
    for (std::thread &thread : threads)
        thread.join();

    for (size_t t = 1; t < results.size(); ++t)
        expectBitIdentical(results[t], results[0]);
    expectDirEmptyOrValid(scratch.str());
}

TEST(EngineRobustness, KilledWritersNeverPublishTornArtifacts)
{
    // The crash-safety torture test: fork a writer child and hard-kill
    // it (_exit from inside the write loop) at a failpoint-chosen
    // write offset, sweeping the offset across runs. Whatever the
    // crash point — during the trace spill, the reflen, or the result
    // write — the shared directory must stay empty-or-valid.
    ScratchDir scratch("yasim_engine_torture");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    int crashes = 0;
    for (uint64_t crash_at :
         std::initializer_list<uint64_t>{0, 1, 2, 4, 7, 12}) {
        fs::remove_all(scratch.str());
        fs::create_directories(scratch.str());

        pid_t pid = fork();
        ASSERT_NE(pid, -1);
        if (pid == 0) {
            // Child: arm the crash site, run one cache-warming job,
            // and exit 0 if the sweep point was past the last write.
            failpoint::configure("io.write.crash=after" +
                                 std::to_string(crash_at));
            ExperimentEngine engine({.cacheDir = scratch.str()});
            engine.run(smarts, engine.context("gzip", suite), config);
            ::_exit(0);
        }
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_TRUE(WEXITSTATUS(status) == 0 ||
                    WEXITSTATUS(status) == 86)
            << "unexpected child exit " << WEXITSTATUS(status);
        crashes += WEXITSTATUS(status) == 86 ? 1 : 0;

        expectDirEmptyOrValid(scratch.str());

        // And the survivors must be fully usable: a fresh engine over
        // the directory reproduces the result bit-identically.
        failpoint::ScopedSchedule off("");
        ExperimentEngine after({.cacheDir = scratch.str()});
        TechniqueResult result =
            after.run(smarts, after.context("gzip", suite), config);
        EXPECT_GT(result.workUnits, 0.0);
    }
    // The sweep must actually have killed at least one child mid-write
    // (otherwise the offsets are all past the workload's last write
    // and the test is vacuous).
    EXPECT_GE(crashes, 1);
}

// ------------------------------------------------------------ prefetch

TEST(Engine, PrefetchedGridIsBitIdenticalToSerial)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    std::vector<TechniquePtr> techniques = {
        std::make_shared<Smarts>(1000, 2000),
        std::make_shared<ReducedInput>(InputSet::Small),
    };
    std::vector<SimConfig> configs = {architecturalConfig(1),
                                      architecturalConfig(2)};

    ExperimentEngine pooled;
    TechniqueContext pctx = pooled.context("gzip", suite);
    pooled.prefetch(pctx, techniques, configs);
    const uint64_t executed = pooled.counters().runsExecuted;
    // techniques x configs plus the reference per config.
    EXPECT_EQ(executed, techniques.size() * configs.size() +
                            configs.size());

    ExperimentEngine serial;
    TechniqueContext sctx = serial.context("gzip", suite);
    for (const SimConfig &config : configs)
        for (const TechniquePtr &technique : techniques) {
            TechniqueResult p = pooled.run(*technique, pctx, config);
            TechniqueResult s = serial.run(*technique, sctx, config);
            expectBitIdentical(p, s);
        }
    // Table assembly above hit the memo only.
    EXPECT_EQ(pooled.counters().runsExecuted, executed);
}

TEST(Engine, PrefetchIsIdempotent)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    std::vector<TechniquePtr> techniques = {
        std::make_shared<Smarts>(1000, 2000)};
    std::vector<SimConfig> configs = {architecturalConfig(1)};

    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    engine.prefetch(ctx, techniques, configs);
    const uint64_t executed = engine.counters().runsExecuted;
    engine.prefetch(ctx, techniques, configs);
    EXPECT_EQ(engine.counters().runsExecuted, executed);
    EXPECT_GT(engine.counters().gridJobs, 0u);
}

} // namespace
} // namespace yasim
