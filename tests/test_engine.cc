/**
 * @file
 * Tests for the ExperimentEngine: cache-key construction, memoization
 * and its counters, the on-disk result cache (bit-identical
 * round-trips), in-flight deduplication, and pooled prefetch
 * determinism.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/cache_key.hh"
#include "engine/engine.hh"
#include "engine/result_io.hh"
#include "techniques/full_reference.hh"
#include "techniques/reduced_input.hh"
#include "techniques/service.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kRefInsts = 150'000;

TechniqueContext
directCtx(const std::string &bench, uint64_t ref = kRefInsts)
{
    SuiteConfig suite;
    suite.referenceInstructions = ref;
    static DirectService service;
    return TechniqueContext::make(bench, suite, service);
}

/** Bitwise double equality — the disk cache promises bit-identical. */
bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
bitEq(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!bitEq(a[i], b[i]))
            return false;
    return true;
}

/** Full bit-level equality of two technique results. */
void
expectBitIdentical(const TechniqueResult &a, const TechniqueResult &b)
{
    EXPECT_EQ(a.technique, b.technique);
    EXPECT_EQ(a.permutation, b.permutation);
    EXPECT_TRUE(bitEq(a.cpi, b.cpi));
    EXPECT_TRUE(bitEq(a.metrics, b.metrics));
    EXPECT_TRUE(bitEq(a.bbef, b.bbef));
    EXPECT_TRUE(bitEq(a.bbv, b.bbv));
    EXPECT_TRUE(bitEq(a.workUnits, b.workUnits));
    EXPECT_EQ(a.detailedInsts, b.detailedInsts);
    EXPECT_EQ(a.detailed.instructions, b.detailed.instructions);
    EXPECT_EQ(a.detailed.cycles, b.detailed.cycles);
}

/** A scratch cache directory wiped before and after each use. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
    std::string str() const { return dir.string(); }

  private:
    fs::path dir;
};

// ---------------------------------------------------------------- keys

TEST(CacheKey, StableAcrossCalls)
{
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);
    EXPECT_EQ(resultCacheKey(smarts, ctx, config),
              resultCacheKey(smarts, ctx, config));
}

TEST(CacheKey, EveryInputChangesTheKey)
{
    TechniqueContext gzip = directCtx("gzip");
    TechniqueContext mcf = directCtx("mcf");
    TechniqueContext longer = directCtx("gzip", kRefInsts * 2);
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);
    const std::string base = resultCacheKey(smarts, gzip, config);

    // Benchmark and suite scaling.
    EXPECT_NE(base, resultCacheKey(smarts, mcf, config));
    EXPECT_NE(base, resultCacheKey(smarts, longer, config));

    // Technique and technique parameters.
    EXPECT_NE(base, resultCacheKey(Smarts(1000, 4000), gzip, config));
    EXPECT_NE(base, resultCacheKey(FullReference(), gzip, config));

    // Any machine-configuration field.
    SimConfig bigger_l2 = config;
    bigger_l2.mem.l2.sizeKb *= 2;
    EXPECT_NE(base, resultCacheKey(smarts, gzip, bigger_l2));
}

TEST(CacheKey, ConfigDisplayNameIsExcluded)
{
    TechniqueContext ctx = directCtx("gzip");
    Smarts smarts(1000, 2000);
    SimConfig a = architecturalConfig(2);
    SimConfig b = a;
    b.name = "same machine, different label";
    EXPECT_EQ(resultCacheKey(smarts, ctx, a),
              resultCacheKey(smarts, ctx, b));
}

TEST(CacheKey, TechniqueDisplayLabelIsExcluded)
{
    // Two SimPoints that differ only in their display label are the
    // same experiment and must share a key.
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(2);
    SimPoint a(10.0, 30, 1.0, "multiple 10M");
    SimPoint b(10.0, 30, 1.0, "another label");
    EXPECT_NE(a.permutation(), b.permutation());
    EXPECT_EQ(resultCacheKey(a, ctx, config),
              resultCacheKey(b, ctx, config));
}

TEST(CacheKey, KeyMentionsFormatVersionAndBenchmark)
{
    TechniqueContext ctx = directCtx("gzip");
    std::string key =
        resultCacheKey(Smarts(1000, 2000), ctx, architecturalConfig(1));
    EXPECT_NE(key.find("gzip"), std::string::npos);
    EXPECT_NE(key.find(std::to_string(kCacheFormatVersion)),
              std::string::npos);
}

TEST(CacheKey, DigestIs32HexAndContentSensitive)
{
    std::string a = cacheDigest("some key text");
    std::string b = cacheDigest("some key texu");
    EXPECT_EQ(a.size(), 32u);
    EXPECT_TRUE(a.find_first_not_of("0123456789abcdef") ==
                std::string::npos);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, cacheDigest("some key text"));
}

// ---------------------------------------------------------- result I/O

TEST(ResultIo, RoundTripsBitIdentically)
{
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);
    TechniqueResult fresh = smarts.run(ctx, config);
    const std::string key = resultCacheKey(smarts, ctx, config);

    std::stringstream buffer;
    writeResult(buffer, key, fresh);
    TechniqueResult loaded;
    ASSERT_TRUE(readResult(buffer, key, loaded));
    expectBitIdentical(loaded, fresh);
}

TEST(ResultIo, RejectsWrongKeyAndTruncation)
{
    TechniqueContext ctx = directCtx("gzip");
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);
    TechniqueResult fresh = smarts.run(ctx, config);
    const std::string key = resultCacheKey(smarts, ctx, config);

    std::stringstream buffer;
    writeResult(buffer, key, fresh);
    TechniqueResult loaded;
    std::stringstream wrong(buffer.str());
    EXPECT_FALSE(readResult(wrong, key + "X", loaded));

    std::string text = buffer.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_FALSE(readResult(truncated, key, loaded));
}

TEST(ResultIo, ReferenceLengthRoundTrip)
{
    std::stringstream buffer;
    writeReferenceLength(buffer, "ref-key", 123'456'789ULL);
    uint64_t length = 0;
    ASSERT_TRUE(readReferenceLength(buffer, "ref-key", length));
    EXPECT_EQ(length, 123'456'789ULL);

    std::stringstream again(buffer.str());
    again.seekg(0);
    EXPECT_FALSE(readReferenceLength(again, "other-key", length));
}

// ------------------------------------------------------------- memoing

TEST(Engine, MemoizesRepeatedRuns)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    TechniqueResult first = engine.run(smarts, ctx, config);
    TechniqueResult second = engine.run(smarts, ctx, config);
    expectBitIdentical(first, second);

    EngineCounters ctr = engine.counters();
    EXPECT_EQ(ctr.runsExecuted, 1u);
    EXPECT_EQ(ctr.memoMisses, 1u);
    EXPECT_EQ(ctr.memoHits, 1u);
    EXPECT_GT(ctr.workUnitsSaved, 0.0);
}

TEST(Engine, MatchesDirectServiceBitForBit)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ectx = engine.context("mcf", suite);
    TechniqueContext dctx = directCtx("mcf");
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    TechniqueResult pooled = engine.run(smarts, ectx, config);
    TechniqueResult direct = smarts.run(dctx, config);
    expectBitIdentical(pooled, direct);
}

TEST(Engine, RestampsDisplayLabelsOnSharedKeys)
{
    // a and b share a cache key (labels are excluded), but each caller
    // must get its own technique's labels back.
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    SimConfig config = architecturalConfig(1);
    SimPoint a(10.0, 30, 1.0, "multiple 10M");
    SimPoint b(10.0, 30, 1.0, "another label");

    TechniqueResult ra = engine.run(a, ctx, config);
    TechniqueResult rb = engine.run(b, ctx, config);
    EXPECT_EQ(engine.counters().runsExecuted, 1u);
    EXPECT_EQ(ra.permutation, "multiple 10M");
    EXPECT_EQ(rb.permutation, "another label");
    EXPECT_TRUE(bitEq(ra.cpi, rb.cpi));
}

TEST(Engine, ConcurrentRequestsCollapseOntoOneRun)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    SimConfig config = architecturalConfig(2);
    FullReference reference;

    std::vector<TechniqueResult> results(4);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t)
        threads.emplace_back([&, t] {
            results[t] = engine.run(reference, ctx, config);
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(engine.counters().runsExecuted, 1u);
    for (size_t t = 1; t < results.size(); ++t)
        expectBitIdentical(results[t], results[0]);
}

// ----------------------------------------------------------- the disk

TEST(Engine, DiskCacheRoundTripsAcrossEngines)
{
    ScratchDir scratch("yasim_engine_disk_roundtrip");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(2);
    Smarts smarts(1000, 2000);

    TechniqueResult fresh;
    {
        ExperimentEngine warm({.cacheDir = scratch.str()});
        fresh = warm.run(smarts, warm.context("gzip", suite), config);
        EXPECT_EQ(warm.counters().runsExecuted, 1u);
        EXPECT_GE(warm.counters().diskWrites, 1u);
    }

    // A second engine over the same directory simulates nothing: the
    // result comes from the disk cache and the reference length from
    // the trace store (whose trace also loads from disk, not a fresh
    // interpretation).
    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult loaded =
        cold.run(smarts, cold.context("gzip", suite), config);
    EngineCounters ctr = cold.counters();
    EXPECT_EQ(ctr.runsExecuted, 0u);
    EXPECT_GE(ctr.diskHits, 1u);
    EXPECT_GE(ctr.refLengthFromTrace, 1u);
    ASSERT_NE(cold.traceStore(), nullptr);
    EXPECT_EQ(cold.traceStore()->counters().recordings, 0u);
    EXPECT_GE(cold.traceStore()->counters().diskLoads, 1u);
    expectBitIdentical(loaded, fresh);
}

TEST(Engine, RefLengthDiskCacheServesTracelessEngines)
{
    ScratchDir scratch("yasim_engine_reflen_roundtrip");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;

    uint64_t measured = 0;
    {
        ExperimentEngine warm(
            {.cacheDir = scratch.str(), .traces = false});
        measured = warm.referenceLength("gzip", suite);
        EXPECT_EQ(warm.counters().refLengthMisses, 1u);
    }

    ExperimentEngine cold({.cacheDir = scratch.str(), .traces = false});
    EXPECT_EQ(cold.traceStore(), nullptr);
    EXPECT_EQ(cold.referenceLength("gzip", suite), measured);
    EXPECT_GE(cold.counters().refLengthDiskHits, 1u);
}

TEST(Engine, CorruptDiskFilesReadAsMisses)
{
    ScratchDir scratch("yasim_engine_disk_corrupt");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    SimConfig config = architecturalConfig(1);
    Smarts smarts(500, 1000);

    {
        ExperimentEngine warm({.cacheDir = scratch.str()});
        warm.run(smarts, warm.context("gzip", suite), config);
    }
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.is_regular_file()) {
            std::ofstream out(entry.path(), std::ios::trunc);
            out << "not a cache file\n";
        }

    ExperimentEngine cold({.cacheDir = scratch.str()});
    TechniqueResult rerun =
        cold.run(smarts, cold.context("gzip", suite), config);
    EXPECT_EQ(cold.counters().runsExecuted, 1u);
    EXPECT_GT(rerun.workUnits, 0.0);
}

// ------------------------------------------------------------ prefetch

TEST(Engine, PrefetchedGridIsBitIdenticalToSerial)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    std::vector<TechniquePtr> techniques = {
        std::make_shared<Smarts>(1000, 2000),
        std::make_shared<ReducedInput>(InputSet::Small),
    };
    std::vector<SimConfig> configs = {architecturalConfig(1),
                                      architecturalConfig(2)};

    ExperimentEngine pooled;
    TechniqueContext pctx = pooled.context("gzip", suite);
    pooled.prefetch(pctx, techniques, configs);
    const uint64_t executed = pooled.counters().runsExecuted;
    // techniques x configs plus the reference per config.
    EXPECT_EQ(executed, techniques.size() * configs.size() +
                            configs.size());

    ExperimentEngine serial;
    TechniqueContext sctx = serial.context("gzip", suite);
    for (const SimConfig &config : configs)
        for (const TechniquePtr &technique : techniques) {
            TechniqueResult p = pooled.run(*technique, pctx, config);
            TechniqueResult s = serial.run(*technique, sctx, config);
            expectBitIdentical(p, s);
        }
    // Table assembly above hit the memo only.
    EXPECT_EQ(pooled.counters().runsExecuted, executed);
}

TEST(Engine, PrefetchIsIdempotent)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    std::vector<TechniquePtr> techniques = {
        std::make_shared<Smarts>(1000, 2000)};
    std::vector<SimConfig> configs = {architecturalConfig(1)};

    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    engine.prefetch(ctx, techniques, configs);
    const uint64_t executed = engine.counters().runsExecuted;
    engine.prefetch(ctx, techniques, configs);
    EXPECT_EQ(engine.counters().runsExecuted, executed);
    EXPECT_GT(engine.counters().gridJobs, 0u);
}

} // namespace
} // namespace yasim
