/** @file Tests for the ISA: instructions, programs, the builder. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/program.hh"
#include "isa/program_builder.hh"

namespace yasim {
namespace {

TEST(Instruction, ControlClassification)
{
    Instruction beq{Opcode::Beq, noReg, 1, 2, 0};
    EXPECT_TRUE(beq.isControl());
    EXPECT_TRUE(beq.isCondBranch());
    Instruction jmp{Opcode::Jmp, noReg, noReg, noReg, 5};
    EXPECT_TRUE(jmp.isControl());
    EXPECT_FALSE(jmp.isCondBranch());
    Instruction add{Opcode::Add, 1, 2, 3, 0};
    EXPECT_FALSE(add.isControl());
}

TEST(Instruction, MemoryClassification)
{
    Instruction ld{Opcode::Ld, 1, 2, noReg, 8};
    EXPECT_TRUE(ld.isLoad());
    EXPECT_FALSE(ld.isStore());
    Instruction st{Opcode::St, noReg, 2, 3, 8};
    EXPECT_TRUE(st.isStore());
    Instruction fld{Opcode::FLd, 1, 2, noReg, 0};
    EXPECT_TRUE(fld.isLoad());
    EXPECT_TRUE(fld.isFp());
    EXPECT_TRUE(fld.writesFpReg());
}

TEST(Instruction, FuClasses)
{
    EXPECT_EQ((Instruction{Opcode::Add, 1, 2, 3, 0}).fuClass(),
              FuClass::IntAlu);
    EXPECT_EQ((Instruction{Opcode::Mul, 1, 2, 3, 0}).fuClass(),
              FuClass::IntMult);
    EXPECT_EQ((Instruction{Opcode::Div, 1, 2, 3, 0}).fuClass(),
              FuClass::IntDiv);
    EXPECT_EQ((Instruction{Opcode::FMul, 1, 2, 3, 0}).fuClass(),
              FuClass::FpMult);
    EXPECT_EQ((Instruction{Opcode::FDiv, 1, 2, 3, 0}).fuClass(),
              FuClass::FpDiv);
    EXPECT_EQ((Instruction{Opcode::Ld, 1, 2, noReg, 0}).fuClass(),
              FuClass::MemRead);
    EXPECT_EQ((Instruction{Opcode::Beq, noReg, 1, 2, 0}).fuClass(),
              FuClass::Branch);
}

TEST(Instruction, EveryOpcodeHasNameAndFuClass)
{
    for (int op = 0; op <= static_cast<int>(Opcode::Halt); ++op) {
        Instruction inst{static_cast<Opcode>(op), 1, 1, 1, 0};
        EXPECT_STRNE(opcodeName(inst.op), "???");
        inst.fuClass(); // must not panic
    }
}

TEST(Instruction, Disassembly)
{
    Instruction add{Opcode::Add, 3, 1, 2, 0};
    EXPECT_EQ(add.toString(), "add r3, r1, r2");
}

TEST(ProgramBuilder, ResolvesForwardLabels)
{
    ProgramBuilder b("t");
    Label skip = b.newLabel();
    b.movi(1, 5);
    b.beq(1, 0, skip); // forward reference
    b.movi(2, 1);
    b.bind(skip);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(1).imm, 3); // branch targets the bind point
}

TEST(ProgramBuilder, ResolvesBackwardLabels)
{
    ProgramBuilder b("t");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.bind(top);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.at(2).imm, 1);
}

TEST(Program, BasicBlockDiscovery)
{
    // movi; beq -> L; addi; L: halt   =>  blocks: [0,1] [2,2] [3,3]
    ProgramBuilder b("t");
    Label l = b.newLabel();
    b.movi(1, 1);
    b.beq(1, 0, l);
    b.addi(2, 2, 1);
    b.bind(l);
    b.halt();
    Program p = b.finish();
    ASSERT_EQ(p.numBlocks(), 3u);
    EXPECT_EQ(p.basicBlocks()[0].first, 0u);
    EXPECT_EQ(p.basicBlocks()[0].last, 1u);
    EXPECT_EQ(p.basicBlocks()[1].first, 2u);
    EXPECT_EQ(p.basicBlocks()[2].first, 3u);
    EXPECT_EQ(p.blockOf(0), 0u);
    EXPECT_EQ(p.blockOf(1), 0u);
    EXPECT_EQ(p.blockOf(2), 1u);
    EXPECT_EQ(p.blockOf(3), 2u);
}

TEST(Program, SingleBlockProgram)
{
    ProgramBuilder b("t");
    b.movi(1, 1);
    b.addi(1, 1, 1);
    b.halt();
    Program p = b.finish();
    EXPECT_EQ(p.numBlocks(), 1u);
    EXPECT_EQ(p.basicBlocks()[0].size(), 3u);
}

TEST(Program, PcAddressing)
{
    EXPECT_EQ(Program::pcAddress(0), textBase);
    EXPECT_EQ(Program::pcAddress(10), textBase + 10 * instBytes);
}

TEST(ProgramBuilderDeath, UnboundLabelIsFatal)
{
    auto bad = [] {
        ProgramBuilder b("t");
        Label never = b.newLabel();
        b.jmp(never);
        b.halt();
        b.finish();
    };
    EXPECT_DEATH(bad(), "unbound label");
}

TEST(ProgramDeath, MissingHaltIsFatal)
{
    auto bad = [] {
        std::vector<Instruction> insts;
        insts.push_back(Instruction{Opcode::Nop, noReg, noReg, noReg, 0});
        Program p(std::move(insts), "nohalt");
        p.validate();
    };
    EXPECT_DEATH(bad(), "no Halt");
}

} // namespace
} // namespace yasim
