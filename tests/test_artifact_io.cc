/**
 * @file
 * Tests for the deterministic failpoint layer and the framed artifact
 * reader/writer behind every on-disk cache: trigger semantics,
 * byte-level frame verification, quarantine, transient-open retries,
 * torn-write detection, and cache-budget eviction.
 *
 * Every test pins its own failpoint schedule with ScopedSchedule so
 * the assertions hold even when the whole suite runs under a CI
 * YASIM_FAILPOINTS schedule (the RAII guard restores it afterwards).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/artifact_io.hh"
#include "support/failpoint.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

/** A scratch directory wiped before and after each use. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
    std::string str() const { return dir.string(); }
    std::string file(const std::string &name) const
    {
        return (dir / name).string();
    }

  private:
    fs::path dir;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return out;
}

void
dump(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

// ----------------------------------------------------------- failpoints

TEST(Failpoint, UnarmedSitesNeverFire)
{
    failpoint::ScopedSchedule off("");
    EXPECT_FALSE(failpoint::anyArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(failpoint::fire("io.read.corrupt"));
    EXPECT_EQ(failpoint::stats("io.read.corrupt").evaluations, 0u);
}

TEST(Failpoint, AlwaysFiresEveryTime)
{
    failpoint::ScopedSchedule sched("io.read.corrupt=always");
    EXPECT_TRUE(failpoint::anyArmed());
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(failpoint::fire("io.read.corrupt"));
    failpoint::SiteStats s = failpoint::stats("io.read.corrupt");
    EXPECT_EQ(s.evaluations, 5u);
    EXPECT_EQ(s.fires, 5u);
    // Other sites stay unarmed.
    EXPECT_FALSE(failpoint::fire("io.rename.fail"));
}

TEST(Failpoint, AfterKFiresExactlyOnceOnTheKPlusFirstEvaluation)
{
    failpoint::ScopedSchedule sched("io.write.short=after3");
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(failpoint::fire("io.write.short")) << i;
    EXPECT_TRUE(failpoint::fire("io.write.short"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(failpoint::fire("io.write.short"));
    EXPECT_EQ(failpoint::stats("io.write.short").fires, 1u);
    // A spent single-shot site no longer counts as armed.
    EXPECT_FALSE(failpoint::anyArmed());
}

TEST(Failpoint, OneInNIsSeededAndReproducible)
{
    auto sequence = [] {
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(failpoint::fire("io.read.corrupt"));
        return fires;
    };

    failpoint::ScopedSchedule first("io.read.corrupt=1in8");
    std::vector<bool> a = sequence();
    failpoint::configure("io.read.corrupt=1in8");
    std::vector<bool> b = sequence();
    EXPECT_EQ(a, b);

    uint64_t fired = failpoint::stats("io.read.corrupt").fires;
    EXPECT_GT(fired, 5u);  // ~25 expected out of 200
    EXPECT_LT(fired, 80u);

    // A different schedule seed draws a different sequence.
    failpoint::configure("seed=99,io.read.corrupt=1in8");
    EXPECT_NE(sequence(), a);
}

TEST(Failpoint, ScopedScheduleRestoresThePreviousSpec)
{
    failpoint::ScopedSchedule outer("io.rename.fail=always");
    {
        failpoint::ScopedSchedule inner("");
        EXPECT_FALSE(failpoint::fire("io.rename.fail"));
    }
    EXPECT_EQ(failpoint::activeSpec(), "io.rename.fail=always");
    EXPECT_TRUE(failpoint::fire("io.rename.fail"));
}

TEST(FailpointDeathTest, MalformedSpecsAreFatal)
{
    EXPECT_DEATH(failpoint::configure("io.read.corrupt"),
                 "not site=trigger");
    EXPECT_DEATH(failpoint::configure("io.read.corrupt=1in0"),
                 "bad 1inN");
    EXPECT_DEATH(failpoint::configure("io.read.corrupt=sometimes"),
                 "unknown trigger");
}

// ------------------------------------------------------------- framing

TEST(ArtifactIo, RoundTripsBinaryPayloads)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_roundtrip");
    const std::string path = scratch.file("blob.art");
    std::string payload = "binary\0payload\n\xff with NULs";
    payload.push_back('\0');

    ArtifactWriteResult wrote =
        writeArtifact(path, "yasim-test", 7, payload);
    ASSERT_TRUE(wrote.ok) << wrote.error;
    EXPECT_EQ(wrote.retries, 0u);

    ArtifactReadResult read = readArtifact(path, "yasim-test", 7);
    ASSERT_EQ(read.status, ArtifactStatus::Ok) << read.error;
    EXPECT_EQ(read.payload, payload);
    EXPECT_EQ(read.retries, 0u);

    // No stray temp files left behind.
    int files = 0;
    for (const auto &entry : fs::directory_iterator(scratch.str()))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1);
}

TEST(ArtifactIo, EmptyPayloadIsAValidArtifact)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_empty");
    const std::string path = scratch.file("empty.art");
    ASSERT_TRUE(writeArtifact(path, "yasim-test", 1, "").ok);
    ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
    ASSERT_EQ(read.status, ArtifactStatus::Ok) << read.error;
    EXPECT_TRUE(read.payload.empty());
}

TEST(ArtifactIo, MissingFileIsAMissNotAnError)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_missing");
    ArtifactReadResult read =
        readArtifact(scratch.file("nope.art"), "yasim-test", 1);
    EXPECT_EQ(read.status, ArtifactStatus::Missing);
    EXPECT_FALSE(read.quarantined);
}

TEST(ArtifactIo, WrongKindIsCorruptButStaleVersionIsAMiss)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_kinds");
    const std::string path = scratch.file("a.art");

    ASSERT_TRUE(writeArtifact(path, "yasim-test", 3, "payload").ok);
    ArtifactReadResult kind = readArtifact(path, "yasim-other", 3);
    EXPECT_EQ(kind.status, ArtifactStatus::Corrupt);
    EXPECT_NE(kind.error.find("magic"), std::string::npos);
    EXPECT_TRUE(kind.quarantined);
    fs::remove(path + ".corrupt"); // drop the wrong-kind quarantine

    // A cleanly-framed artifact from another format generation is a
    // version miss, not rot: the stale file is deleted outright, with
    // no ".corrupt" quarantine to debug.
    ASSERT_TRUE(writeArtifact(path, "yasim-test", 3, "payload").ok);
    ArtifactReadResult version = readArtifact(path, "yasim-test", 4);
    EXPECT_EQ(version.status, ArtifactStatus::VersionMismatch);
    EXPECT_NE(version.error.find("version"), std::string::npos);
    EXPECT_FALSE(version.quarantined);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".corrupt"));

    // Once the stale file is gone, the next lookup is a plain miss.
    EXPECT_EQ(readArtifact(path, "yasim-test", 4).status,
              ArtifactStatus::Missing);

    // A corrupted version field is indistinguishable from rot (the
    // checksum is bound to the stored version) and stays Corrupt.
    ASSERT_TRUE(writeArtifact(path, "yasim-test", 3, "payload").ok);
    std::string frame = slurp(path);
    const size_t version_at =
        8 + 4 + 8 + std::string("yasim-test").size();
    frame[version_at] ^= 0x04; // version 3 -> 7, checksum untouched
    dump(path, frame);
    ArtifactReadResult flipped = readArtifact(path, "yasim-test", 3);
    EXPECT_EQ(flipped.status, ArtifactStatus::Corrupt);
    EXPECT_NE(flipped.error.find("checksum"), std::string::npos);
    EXPECT_TRUE(flipped.quarantined);
}

TEST(ArtifactIo, EveryByteIsCoveredByVerification)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_flips");
    const std::string path = scratch.file("flip.art");
    ASSERT_TRUE(
        writeArtifact(path, "yasim-test", 1, "sensitive payload").ok);
    const std::string good = slurp(path);
    ASSERT_FALSE(good.empty());

    // Flip one bit at a sample of offsets: every single one must be
    // caught (and quarantined so the re-dump below starts clean).
    for (size_t at = 0; at < good.size(); at += 7) {
        std::string bad = good;
        bad[at] ^= 0x01;
        dump(path, bad);
        ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
        EXPECT_EQ(read.status, ArtifactStatus::Corrupt)
            << "undetected flip at offset " << at;
        EXPECT_FALSE(fs::exists(path)) << "no quarantine at " << at;
    }
}

TEST(ArtifactIo, TruncationAndTrailingGarbageAreCorrupt)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_tails");
    const std::string path = scratch.file("tail.art");
    ASSERT_TRUE(writeArtifact(path, "yasim-test", 1, "payload").ok);
    const std::string good = slurp(path);

    dump(path, good.substr(0, good.size() - 3));
    EXPECT_EQ(readArtifact(path, "yasim-test", 1).status,
              ArtifactStatus::Corrupt);

    dump(path, good + "junk");
    ArtifactReadResult trailing = readArtifact(path, "yasim-test", 1);
    EXPECT_EQ(trailing.status, ArtifactStatus::Corrupt);
    EXPECT_NE(trailing.error.find("trailing"), std::string::npos);

    dump(path, "");
    EXPECT_EQ(readArtifact(path, "yasim-test", 1).status,
              ArtifactStatus::Corrupt);
}

TEST(ArtifactIo, QuarantineMovesTheBadFileAside)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_quarantine");
    const std::string path = scratch.file("bad.art");
    dump(path, "not an artifact at all");

    ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
    EXPECT_EQ(read.status, ArtifactStatus::Corrupt);
    EXPECT_TRUE(read.quarantined);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
    EXPECT_EQ(slurp(path + ".corrupt"), "not an artifact at all");

    // The next lookup is a clean miss, not a repeated parse failure.
    EXPECT_EQ(readArtifact(path, "yasim-test", 1).status,
              ArtifactStatus::Missing);
}

// ---------------------------------------------------- injected faults

TEST(ArtifactIo, InjectedCorruptionQuarantinesAndReports)
{
    ScratchDir scratch("yasim_artifact_injected");
    const std::string path = scratch.file("bits.art");
    {
        failpoint::ScopedSchedule off("");
        ASSERT_TRUE(writeArtifact(path, "yasim-test", 1, "payload").ok);
    }
    failpoint::ScopedSchedule sched("io.read.corrupt=always");
    ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
    EXPECT_EQ(read.status, ArtifactStatus::Corrupt);
    EXPECT_TRUE(read.quarantined);
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
}

TEST(ArtifactIo, TransientOpenRetriesThenSucceeds)
{
    ScratchDir scratch("yasim_artifact_transient");
    const std::string path = scratch.file("retry.art");
    {
        failpoint::ScopedSchedule off("");
        ASSERT_TRUE(writeArtifact(path, "yasim-test", 1, "payload").ok);
    }
    // after0: the very first open fails once, the retry succeeds.
    failpoint::ScopedSchedule sched("io.open.transient=after0");
    ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
    ASSERT_EQ(read.status, ArtifactStatus::Ok) << read.error;
    EXPECT_EQ(read.payload, "payload");
    EXPECT_EQ(read.retries, 1u);
}

TEST(ArtifactIo, PersistentTransientOpenGivesUpGracefully)
{
    ScratchDir scratch("yasim_artifact_transient_hard");
    const std::string path = scratch.file("never.art");
    {
        failpoint::ScopedSchedule off("");
        ASSERT_TRUE(writeArtifact(path, "yasim-test", 1, "payload").ok);
    }
    failpoint::ScopedSchedule sched("io.open.transient=always");
    ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
    EXPECT_EQ(read.status, ArtifactStatus::Transient);
    EXPECT_GE(read.retries, 1u);
    // The file itself is fine: it must NOT have been quarantined.
    EXPECT_TRUE(fs::exists(path));
}

TEST(ArtifactIo, TornWriteIsCaughtByTheNextRead)
{
    ScratchDir scratch("yasim_artifact_torn");
    const std::string path = scratch.file("torn.art");
    {
        // A short write publishes a torn frame (like a power cut after
        // rename but before the data hit the platter).
        failpoint::ScopedSchedule sched("io.write.short=always");
        writeArtifact(path, "yasim-test", 1,
                      std::string(4096, 'x'));
    }
    failpoint::ScopedSchedule off("");
    ArtifactReadResult read = readArtifact(path, "yasim-test", 1);
    EXPECT_EQ(read.status, ArtifactStatus::Corrupt);
    EXPECT_FALSE(fs::exists(path));
}

TEST(ArtifactIo, FailedRenameLeavesNoFileBehind)
{
    ScratchDir scratch("yasim_artifact_rename");
    const std::string path = scratch.file("renamed.art");
    failpoint::ScopedSchedule sched("io.rename.fail=always");
    ArtifactWriteResult wrote =
        writeArtifact(path, "yasim-test", 1, "payload");
    EXPECT_FALSE(wrote.ok);
    // Neither the target nor any temp file survives.
    int files = 0;
    for (const auto &entry : fs::directory_iterator(scratch.str()))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 0);
}

// ------------------------------------------------------------ eviction

TEST(ArtifactIo, EvictsOldestFilesDownToBudget)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_evict");
    // Three 1000-byte artifacts with strictly increasing mtimes,
    // derived from the first file's mtime (no wall-clock reads).
    const std::string payload(900, 'p');
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        std::string path = scratch.file("f" + std::to_string(i));
        ASSERT_TRUE(writeArtifact(path, "yasim-test", 1, payload).ok);
        paths.push_back(path);
    }
    fs::file_time_type base = fs::last_write_time(paths[0]);
    for (int i = 0; i < 3; ++i)
        fs::last_write_time(paths[i],
                            base + std::chrono::seconds(i + 1));
    uint64_t each = fs::file_size(paths[0]);

    // Budget fits two files: the oldest one goes.
    EXPECT_EQ(evictToBudget(scratch.str(), 2 * each), 1u);
    EXPECT_FALSE(fs::exists(paths[0]));
    EXPECT_TRUE(fs::exists(paths[1]));
    EXPECT_TRUE(fs::exists(paths[2]));

    // Already under budget: nothing happens.
    EXPECT_EQ(evictToBudget(scratch.str(), 2 * each), 0u);

    // Even an impossible budget never evicts the newest artifact.
    EXPECT_EQ(evictToBudget(scratch.str(), 1), 1u);
    EXPECT_TRUE(fs::exists(paths[2]));
}

TEST(ArtifactIo, EvictionSkipsInFlightTempFiles)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_artifact_evict_tmp");
    dump(scratch.file("a.art.tmp.123.456"), std::string(10000, 't'));
    dump(scratch.file("real.art"), std::string(100, 'r'));
    EXPECT_EQ(evictToBudget(scratch.str(), 500), 0u);
    EXPECT_TRUE(fs::exists(scratch.file("a.art.tmp.123.456")));
    EXPECT_TRUE(fs::exists(scratch.file("real.art")));
}

} // namespace
} // namespace yasim
