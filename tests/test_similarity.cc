/** @file Tests for the Eeckhout02-style similarity analysis. */

#include <gtest/gtest.h>

#include "core/similarity.hh"

namespace yasim {
namespace {

SuiteConfig
tinySuite()
{
    SuiteConfig cfg;
    cfg.referenceInstructions = 200'000;
    return cfg;
}

TEST(Similarity, CharacteristicsAreSane)
{
    WorkloadCharacteristics wc =
        characterizeWorkload("art", InputSet::Reference, tinySuite());
    EXPECT_EQ(wc.benchmark, "art");
    EXPECT_GT(wc.fpFraction, 0.2);       // FP benchmark
    EXPECT_GT(wc.branchAccuracy, 0.98);  // streaming loops
    EXPECT_GT(wc.loadFraction, 0.05);
    EXPECT_LT(wc.loadFraction, 0.6);
    EXPECT_GT(wc.ilpProxy, 0.5);
    EXPECT_EQ(wc.vec().size(),
              WorkloadCharacteristics::metricNames().size());
}

TEST(Similarity, IntBenchmarksHaveNoFp)
{
    WorkloadCharacteristics wc =
        characterizeWorkload("gzip", InputSet::Reference, tinySuite());
    EXPECT_DOUBLE_EQ(wc.fpFraction, 0.0);
}

TEST(Similarity, PerlbmkIsBranchHeavy)
{
    WorkloadCharacteristics perl = characterizeWorkload(
        "perlbmk", InputSet::Reference, tinySuite());
    WorkloadCharacteristics eq =
        characterizeWorkload("equake", InputSet::Reference, tinySuite());
    EXPECT_GT(perl.branchFraction, eq.branchFraction * 2.0);
    EXPECT_LT(perl.branchAccuracy, eq.branchAccuracy);
}

TEST(Similarity, ZScoreProperties)
{
    std::vector<std::vector<double>> vectors = {
        {1.0, 10.0}, {2.0, 10.0}, {3.0, 10.0}};
    auto z = zScoreNormalize(vectors);
    // Column 0: mean 2, stdev 1 -> {-1, 0, 1}.
    EXPECT_DOUBLE_EQ(z[0][0], -1.0);
    EXPECT_DOUBLE_EQ(z[1][0], 0.0);
    EXPECT_DOUBLE_EQ(z[2][0], 1.0);
    // Column 1 is constant -> all zero, not NaN.
    for (const auto &row : z)
        EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(Similarity, McfSmallIsADifferentProgram)
{
    // The paper's reduced-input finding as a clustering result.
    std::vector<std::pair<std::string, InputSet>> pairs = {
        {"mcf", InputSet::Reference}, {"mcf", InputSet::Small},
        {"gzip", InputSet::Reference}, {"gzip", InputSet::Small},
        {"art", InputSet::Reference},
    };
    SimilarityAnalysis analysis = analyzeSimilarity(pairs, tinySuite());
    ASSERT_EQ(analysis.items.size(), 5u);
    // mcf/small must sit far from mcf/reference — farther than
    // gzip/small sits from gzip/reference.
    double mcf_gap = analysis.distance[0][1];
    double gzip_gap = analysis.distance[2][3];
    EXPECT_GT(mcf_gap, gzip_gap * 1.5);
    // Distance matrix is symmetric with a zero diagonal.
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(analysis.distance[i][i], 0.0);
        for (size_t j = 0; j < 5; ++j)
            EXPECT_DOUBLE_EQ(analysis.distance[i][j],
                             analysis.distance[j][i]);
    }
}

TEST(Similarity, Deterministic)
{
    std::vector<std::pair<std::string, InputSet>> pairs = {
        {"gzip", InputSet::Reference}, {"vortex", InputSet::Reference}};
    SimilarityAnalysis a = analyzeSimilarity(pairs, tinySuite());
    SimilarityAnalysis b = analyzeSimilarity(pairs, tinySuite());
    EXPECT_EQ(a.cluster, b.cluster);
    EXPECT_EQ(a.distance, b.distance);
}

} // namespace
} // namespace yasim
