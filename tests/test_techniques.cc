/** @file Tests for the six simulation techniques. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "techniques/full_reference.hh"
#include "techniques/permutations.hh"
#include "techniques/reduced_input.hh"
#include "techniques/service.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

namespace yasim {
namespace {

TechniqueContext
smallContext(const std::string &benchmark = "gzip")
{
    SuiteConfig suite;
    suite.referenceInstructions = 250'000;
    static DirectService service;
    return TechniqueContext::make(benchmark, suite, service);
}

TEST(Context, ScaledMConversion)
{
    TechniqueContext ctx = smallContext();
    // 10000 scaled-M == the whole reference run.
    EXPECT_EQ(ctx.scaledM(10000), ctx.referenceLength);
    EXPECT_EQ(ctx.scaledM(5000), ctx.referenceLength / 2);
    EXPECT_GE(ctx.scaledM(0.0001), 1u); // never zero
}

TEST(Context, ReferenceLengthCached)
{
    TechniqueContext a = smallContext();
    TechniqueContext b = smallContext();
    EXPECT_EQ(a.referenceLength, b.referenceLength);
    EXPECT_GT(a.referenceLength, 100'000u);
}

TEST(FullReference, MatchesDirectSimulation)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    FullReference full;
    TechniqueResult r = full.run(ctx, cfg);
    EXPECT_EQ(r.detailedInsts, ctx.referenceLength);
    EXPECT_GT(r.cpi, 0.1);
    EXPECT_EQ(r.metrics.size(), 4u);
    EXPECT_DOUBLE_EQ(r.workUnits,
                     static_cast<double>(ctx.referenceLength));
    // Profile mass equals the instruction count.
    double bbv_total = 0.0;
    for (double v : r.bbv)
        bbv_total += v;
    EXPECT_DOUBLE_EQ(bbv_total, static_cast<double>(r.detailedInsts));
    // Deterministic across runs.
    TechniqueResult r2 = full.run(ctx, cfg);
    EXPECT_DOUBLE_EQ(r.cpi, r2.cpi);
}

TEST(RunZ, MeasuresExactlyThePrefix)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    RunZ technique(1000.0); // 10% of the run
    TechniqueResult r = technique.run(ctx, cfg);
    EXPECT_EQ(r.detailedInsts, ctx.scaledM(1000));
    EXPECT_LT(r.workUnits, static_cast<double>(ctx.referenceLength));
    EXPECT_EQ(r.technique, "Run Z");
    EXPECT_EQ(r.permutation, "Z=1000M");
}

TEST(RunZ, LongerWindowsCostMore)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    double prev_work = 0.0;
    for (double z : {500.0, 1000.0, 2000.0}) {
        TechniqueResult r = RunZ(z).run(ctx, cfg);
        EXPECT_GT(r.workUnits, prev_work);
        prev_work = r.workUnits;
    }
}

TEST(FfRunZ, SkipsThePrefix)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    FfRunZ technique(4000.0, 500.0);
    TechniqueResult r = technique.run(ctx, cfg);
    EXPECT_EQ(r.detailedInsts, ctx.scaledM(500));
    // Fast-forwarding must cost far less than detailed simulation.
    TechniqueResult run_only = RunZ(4500.0).run(ctx, cfg);
    EXPECT_LT(r.workUnits, run_only.workUnits);
}

TEST(FfRunZ, ColdStateDiffersFromWarm)
{
    TechniqueContext ctx = smallContext("mcf");
    SimConfig cfg = architecturalConfig(1);
    TechniqueResult cold = FfRunZ(1000.0, 100.0).run(ctx, cfg);
    TechniqueResult warm = FfWuRunZ(900.0, 100.0, 100.0).run(ctx, cfg);
    // Both measure the same window; the warmed run can only look
    // same-or-better and typically differs.
    EXPECT_GT(cold.cpi, 0.0);
    EXPECT_GT(warm.cpi, 0.0);
}

TEST(FfWuRunZ, WarmupExcludedFromStats)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    FfWuRunZ technique(900.0, 100.0, 500.0);
    TechniqueResult r = technique.run(ctx, cfg);
    EXPECT_EQ(r.detailed.instructions, ctx.scaledM(500));
    // The work still includes the warm-up's detailed cost.
    EXPECT_GT(r.workUnits,
              static_cast<double>(ctx.scaledM(500)));
}

TEST(ReducedInput, RunsTheSmallerProgram)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    ReducedInput technique(InputSet::Small);
    TechniqueResult r = technique.run(ctx, cfg);
    EXPECT_LT(r.detailedInsts, ctx.referenceLength / 4);
    EXPECT_EQ(r.permutation, "small");
}

TEST(SimPoint, WeightsFormADistribution)
{
    TechniqueContext ctx = smallContext();
    SimPoint technique(100.0, 10, 0.0, "multiple 100M");
    auto points = technique.choosePoints(ctx);
    ASSERT_FALSE(points.empty());
    EXPECT_LE(points.size(), 10u);
    double total = 0.0;
    uint64_t prev_start = 0;
    bool first = true;
    for (const SimulationPoint &p : points) {
        EXPECT_GT(p.weight, 0.0);
        EXPECT_LE(p.weight, 1.0);
        if (!first) {
            EXPECT_GT(p.startInst, prev_start);
        }
        prev_start = p.startInst;
        first = false;
        total += p.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoint, SinglePointVariant)
{
    TechniqueContext ctx = smallContext();
    SimPoint technique(100.0, 1, 0.0, "single 100M");
    auto points = technique.choosePoints(ctx);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_NEAR(points[0].weight, 1.0, 1e-9);
}

TEST(SimPoint, EstimatesReferenceCpi)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(2);
    TechniqueResult ref = FullReference().run(ctx, cfg);
    TechniqueResult sp =
        SimPoint(10.0, 100, 1.0, "multiple 10M").run(ctx, cfg);
    EXPECT_NEAR(sp.cpi, ref.cpi, ref.cpi * 0.25);
    // And does so much more cheaply.
    EXPECT_LT(sp.workUnits, ref.workUnits * 0.7);
}

TEST(SimPoint, DeterministicPoints)
{
    TechniqueContext ctx = smallContext();
    SimPoint technique(10.0, 20, 0.0, "multiple 10M");
    auto a = technique.choosePoints(ctx);
    auto b = technique.choosePoints(ctx);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].interval, b[i].interval);
        EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
}

TEST(Smarts, EstimatesReferenceCpiClosely)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(2);
    TechniqueResult ref = FullReference().run(ctx, cfg);
    TechniqueResult sm = Smarts(1000, 2000).run(ctx, cfg);
    EXPECT_NEAR(sm.cpi, ref.cpi, ref.cpi * 0.15);
    // At this tiny scale SMARTS may need CI-driven re-runs; it must
    // still stay within a small multiple of one reference run (at the
    // paper's scale it is orders of magnitude cheaper).
    EXPECT_LT(sm.workUnits, ref.workUnits * 2.5);
    EXPECT_GT(sm.detailedInsts, 0u);
}

TEST(Smarts, PermutationLabel)
{
    Smarts s(100, 200);
    EXPECT_EQ(s.permutation(), "U=100 W=200");
}

TEST(Smarts, ExplicitSampleCountHonored)
{
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    // A huge CI target disables re-runs so the explicit n sticks.
    TechniqueResult few =
        Smarts(500, 1000, 0.997, 10.0, 20).run(ctx, cfg);
    TechniqueResult many =
        Smarts(500, 1000, 0.997, 10.0, 100).run(ctx, cfg);
    EXPECT_GT(many.detailedInsts, few.detailedInsts);
}

TEST(SimPoint, EarlyPointsComeEarlier)
{
    TechniqueContext ctx = smallContext();
    SimPoint standard(100.0, 10, 0.0, "multiple 100M");
    SimPoint early(100.0, 10, 0.0, "early 100M", 15, 42, 3,
                   /*early=*/true, /*tolerance=*/1.0);
    auto std_points = standard.choosePoints(ctx);
    auto early_points = early.choosePoints(ctx);
    ASSERT_FALSE(std_points.empty());
    ASSERT_FALSE(early_points.empty());
    ASSERT_EQ(std_points.size(), early_points.size());
    // The last early point must not come later than the standard one,
    // and the weights must still form a distribution.
    EXPECT_LE(early_points.back().startInst,
              std_points.back().startInst);
    double total = 0.0;
    for (const SimulationPoint &p : early_points)
        total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoint, RestartsNeverWorsenDistortionDrivenAccuracy)
{
    // More k-means restarts must keep the estimate in the same
    // ballpark (the point of restarts is robustness, not change).
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    double one = SimPoint(100.0, 10, 0.0, "r1", 15, 42, 1)
                     .run(ctx, cfg)
                     .cpi;
    double many = SimPoint(100.0, 10, 0.0, "r7", 15, 42, 7)
                      .run(ctx, cfg)
                      .cpi;
    double ref = FullReference().run(ctx, cfg).cpi;
    EXPECT_NEAR(many, ref, ref * 0.35);
    EXPECT_NEAR(one, ref, ref * 0.45);
}

TEST(Smarts, OversizedWarmupDegradesGracefully)
{
    // W far beyond the scaled run must not swallow the whole program
    // in warm-up (the Table-1 U=10000/W=2000000 permutation at small
    // scales).
    TechniqueContext ctx = smallContext();
    SimConfig cfg = architecturalConfig(1);
    TechniqueResult ref = FullReference().run(ctx, cfg);
    TechniqueResult r =
        Smarts(10000, 2'000'000).run(ctx, cfg);
    EXPECT_GT(r.detailedInsts, 0u);
    EXPECT_NEAR(r.cpi, ref.cpi, ref.cpi); // sane, if not tight
}

TEST(Permutations, TableOneCounts)
{
    // gzip and vortex have all five reduced inputs -> 69 permutations.
    EXPECT_EQ(table1Permutations("gzip").size(), 69u);
    EXPECT_EQ(table1Permutations("vortex").size(), 69u);
    // art lacks small and medium -> 67. perlbmk lacks large and test.
    EXPECT_EQ(table1Permutations("art").size(), 67u);
    EXPECT_EQ(table1Permutations("perlbmk").size(), 67u);
}

TEST(Permutations, FamilySizes)
{
    EXPECT_EQ(familyPermutationCount("gzip", "SimPoint"), 3u);
    EXPECT_EQ(familyPermutationCount("gzip", "SMARTS"), 9u);
    EXPECT_EQ(familyPermutationCount("gzip", "reduced"), 5u);
    EXPECT_EQ(familyPermutationCount("gzip", "Run Z"), 4u);
    EXPECT_EQ(familyPermutationCount("gzip", "FF+Run"), 12u);
    EXPECT_EQ(familyPermutationCount("gzip", "FF+WU+Run"), 36u);
    EXPECT_EQ(familyPermutationCount("mcf", "reduced"), 4u);
}

TEST(Permutations, RepresentativeSubsetSpansFamilies)
{
    auto reps = representativePermutations("gzip");
    std::set<std::string> families;
    for (const auto &t : reps)
        families.insert(t->name());
    for (const std::string &family : techniqueFamilies())
        EXPECT_TRUE(families.count(family)) << family;
}

/** Accuracy ordering on a benchmark with phases: sampling beats Run Z. */
TEST(TechniqueOrdering, SamplingBeatsTruncationOnGcc)
{
    SuiteConfig suite;
    suite.referenceInstructions = 300'000;
    static DirectService service;
    TechniqueContext ctx = TechniqueContext::make("gcc", suite, service);
    SimConfig cfg = architecturalConfig(2);

    double ref_cpi = FullReference().run(ctx, cfg).cpi;
    double smarts_err = std::fabs(
        Smarts(1000, 2000).run(ctx, cfg).cpi - ref_cpi);
    double runz_err =
        std::fabs(RunZ(1000.0).run(ctx, cfg).cpi - ref_cpi);
    EXPECT_LT(smarts_err, runz_err + ref_cpi * 0.02);
}

} // namespace
} // namespace yasim
