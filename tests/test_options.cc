/** @file Tests for the shared bench option parser. */

#include <gtest/gtest.h>

#include <vector>

#include "engine/options.hh"

namespace yasim {
namespace {

BenchOptions
parse(std::vector<const char *> args, uint64_t def = 500'000)
{
    args.insert(args.begin(), "bench");
    return parseBenchOptions(static_cast<int>(args.size()),
                             const_cast<char **>(args.data()), def);
}

TEST(Options, Defaults)
{
    BenchOptions o = parse({});
    EXPECT_EQ(o.suite.referenceInstructions, 500'000u);
    EXPECT_EQ(o.benchmarks.size(), 10u);
    EXPECT_FALSE(o.csv);
    EXPECT_FALSE(o.full);
}

TEST(Options, RefInsts)
{
    BenchOptions o = parse({"--ref-insts", "1234567"});
    EXPECT_EQ(o.suite.referenceInstructions, 1'234'567u);
}

TEST(Options, BenchmarkSubset)
{
    BenchOptions o = parse({"--benchmarks", "gzip,mcf"});
    ASSERT_EQ(o.benchmarks.size(), 2u);
    EXPECT_EQ(o.benchmarks[0], "gzip");
    EXPECT_EQ(o.benchmarks[1], "mcf");
}

TEST(Options, Flags)
{
    BenchOptions o = parse({"--csv", "--full", "--seed", "99"});
    EXPECT_TRUE(o.csv);
    EXPECT_TRUE(o.full);
    EXPECT_EQ(o.suite.seed, 99u);
}

TEST(OptionsDeath, UnknownBenchmark)
{
    EXPECT_DEATH(parse({"--benchmarks", "doom"}), "unknown benchmark");
}

TEST(OptionsDeath, UnknownFlag)
{
    EXPECT_DEATH(parse({"--frobnicate"}), "");
}

TEST(OptionsDeath, TooSmallRefInsts)
{
    EXPECT_DEATH(parse({"--ref-insts", "10"}), "at least");
}

TEST(OptionsDeath, MissingValue)
{
    EXPECT_DEATH(parse({"--ref-insts"}), "");
}

} // namespace
} // namespace yasim
