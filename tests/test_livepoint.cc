/**
 * @file
 * Tests for live-points and the live-point library (sim/livepoint.hh):
 * the sampling grid's superset escalation, the compressed point
 * format's round trip and structural rejection, corruption healing
 * (quarantine + rebuild, byte by byte), stale-version handling as a
 * miss rather than rot, cancellation storms leaving no partial
 * entries, the persisted fast-forward region point, and the headline
 * exactness contract: fanned-out SMARTS bit-identical to the serial
 * loop across the whole Table-2 suite.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "isa/program_builder.hh"
#include "sim/functional.hh"
#include "sim/livepoint.hh"
#include "support/artifact_io.hh"
#include "support/cancel.hh"
#include "support/failpoint.hh"
#include "techniques/service.hh"
#include "techniques/smarts.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/memory_hierarchy.hh"
#include "workloads/suite.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

/** A load/store loop: every unit both loads and stores heap words. */
Program
loopProgram(int64_t trips = 3000)
{
    ProgramBuilder b("lvpt");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, trips);
    b.movi(5, static_cast<int64_t>(heapBase));
    b.bind(top);
    b.ld(6, 5, 0);
    b.add(7, 7, 6);
    b.st(5, 7, 0);
    b.addi(5, 5, 8);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

/** A scratch directory wiped before and after each use. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
    std::string str() const { return dir.string(); }
    fs::path path() const { return dir; }

  private:
    fs::path dir;
};

bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
bitEq(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!bitEq(a[i], b[i]))
            return false;
    return true;
}

void
expectBitIdentical(const TechniqueResult &a, const TechniqueResult &b)
{
    EXPECT_TRUE(bitEq(a.cpi, b.cpi));
    EXPECT_TRUE(bitEq(a.workUnits, b.workUnits));
    EXPECT_TRUE(bitEq(a.metrics, b.metrics));
    EXPECT_TRUE(bitEq(a.bbef, b.bbef));
    EXPECT_TRUE(bitEq(a.bbv, b.bbv));
    EXPECT_EQ(a.detailedInsts, b.detailedInsts);
    EXPECT_EQ(a.detailed.instructions, b.detailed.instructions);
    EXPECT_EQ(a.detailed.cycles, b.detailed.cycles);
    EXPECT_EQ(a.detailed.l1iAccesses, b.detailed.l1iAccesses);
    EXPECT_EQ(a.detailed.l1dMisses, b.detailed.l1dMisses);
    EXPECT_EQ(a.detailed.condMispredicts, b.detailed.condMispredicts);
    EXPECT_EQ(a.detailed.memStallCycles, b.detailed.memStallCycles);
}

void
expectUnitsIdentical(const std::vector<LivePointLibrary::UnitResult> &a,
                     const std::vector<LivePointLibrary::UnitResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].measured, b[i].measured);
        EXPECT_EQ(a[i].warmupDone, b[i].warmupDone);
        EXPECT_EQ(a[i].unitDone, b[i].unitDone);
        EXPECT_EQ(a[i].stats.cycles, b[i].stats.cycles);
        EXPECT_EQ(a[i].stats.instructions, b[i].stats.instructions);
        EXPECT_EQ(a[i].stats.l1dMisses, b[i].stats.l1dMisses);
        EXPECT_EQ(a[i].stats.condMispredicts,
                  b[i].stats.condMispredicts);
        EXPECT_TRUE(bitEq(a[i].bbef, b[i].bbef));
        EXPECT_TRUE(bitEq(a[i].bbv, b[i].bbv));
    }
}

// ----------------------------------------------------- sampling plan

TEST(SamplingPlan, GridCoversTheRun)
{
    SamplingPlan plan = SamplingPlan::make(1000, 400, 100'000);
    EXPECT_EQ(plan.unitInsts, 1000u);
    EXPECT_EQ(plan.warmupInsts, 400u);
    EXPECT_GE(plan.maxUnits, 1u);
    EXPECT_GE(plan.period, plan.span());
    // Every unit's span ends within the run.
    uint64_t last = plan.maxUnits - 1;
    EXPECT_LE(plan.warmStart(last) + plan.span(), plan.length);
    // unitStart sits exactly warmupInsts past warmStart.
    EXPECT_EQ(plan.unitStart(3), plan.warmStart(3) + 400u);
}

TEST(SamplingPlan, OversizedWarmupDegradesToOneUnit)
{
    // A warm-up longer than the run must shrink instead of pushing
    // the only unit past program end (the SMARTS degrade rule).
    SamplingPlan plan = SamplingPlan::make(1000, 400'000, 100'000);
    EXPECT_GE(plan.maxUnits, 1u);
    EXPECT_LE(plan.span(), plan.length);
    EXPECT_LE(plan.warmStart(0) + plan.span(), plan.length);
}

TEST(SamplingPlan, DenserSelectionsAreSupersets)
{
    SamplingPlan plan = SamplingPlan::make(1000, 400, 2'000'000);
    std::vector<uint64_t> prev;
    for (uint64_t n : {1u, 3u, 10u, 50u, 200u, 1000u, 100000u}) {
        std::vector<uint64_t> sel = plan.indicesFor(n);
        EXPECT_GE(sel.size(), std::min<uint64_t>(n, plan.maxUnits));
        // Ascending, on-grid, and a superset of every sparser pick.
        std::set<uint64_t> set(sel.begin(), sel.end());
        EXPECT_EQ(set.size(), sel.size());
        EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
        for (uint64_t idx : sel)
            EXPECT_LT(idx, plan.maxUnits);
        for (uint64_t idx : prev)
            EXPECT_TRUE(set.count(idx)) << "lost unit " << idx;
        prev = sel;
    }
}

// ----------------------------------------------------- point format

TEST(LivePoint, EncodeDecodeRoundTripsEverything)
{
    Program p = loopProgram();
    FunctionalSim sim(p);
    sim.fastForward(2000);
    LivePoint point = LivePoint::captureArch(sim);
    point.noteWord(heapBase, -7);
    point.noteWord(heapBase + 64, 123456789);
    point.noteWord(heapBase + 8192, 1);

    SimConfig cfg = architecturalConfig(1);
    MemoryHierarchy mem(cfg.mem);
    CombinedPredictor bp(cfg.bp);
    FunctionalSim warmer(p);
    warmer.fastForwardWarm(2000, &mem, &bp);
    point.attachUarch(mem, bp, "unit-key");

    std::string payload = point.encode();
    LivePoint decoded;
    ASSERT_TRUE(LivePoint::decode(payload, decoded));
    EXPECT_EQ(decoded.position(), 2000u);
    EXPECT_EQ(decoded.wordCount(), 3u);
    EXPECT_TRUE(decoded.hasArchState());
    EXPECT_TRUE(decoded.hasUarch());
    EXPECT_EQ(decoded.uarchKey(), "unit-key");

    // Restoring the decoded point resumes bit-identically to the
    // original simulator.
    FunctionalSim resumed(p);
    decoded.restoreArch(resumed);
    EXPECT_EQ(resumed.instsExecuted(), 2000u);
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(resumed.intReg(r), sim.intReg(r)) << "r" << r;

    // The warm blob restores under its key and only its key.
    MemoryHierarchy mem2(cfg.mem);
    CombinedPredictor bp2(cfg.bp);
    EXPECT_FALSE(decoded.restoreUarch(mem2, bp2, "other-key"));
    MemoryHierarchy mem3(cfg.mem);
    CombinedPredictor bp3(cfg.bp);
    EXPECT_TRUE(decoded.restoreUarch(mem3, bp3, "unit-key"));
}

TEST(LivePoint, DecodeRejectsEveryTruncation)
{
    Program p = loopProgram();
    FunctionalSim sim(p);
    sim.fastForward(1500);
    LivePoint point = LivePoint::captureArch(sim);
    point.noteWord(heapBase, 42);
    std::string payload = point.encode();

    LivePoint out;
    ASSERT_TRUE(LivePoint::decode(payload, out));
    for (size_t len = 0; len < payload.size(); ++len) {
        LivePoint trunc;
        EXPECT_FALSE(
            LivePoint::decode(std::string_view(payload).substr(0, len),
                              trunc))
            << "prefix of " << len << " bytes parsed";
    }
    // Trailing garbage is structural damage too.
    LivePoint padded;
    EXPECT_FALSE(LivePoint::decode(payload + '\0', padded));
}

// -------------------------------------------------- library healing

TEST(LivePointLibrary, CorruptionByteSweepHealsByRewarming)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_lvpt_sweep");
    Program p = loopProgram();
    FunctionalSim probe(p);
    uint64_t length = probe.fastForward(~0ULL);
    SimConfig cfg = architecturalConfig(1);
    SamplingPlan plan = SamplingPlan::make(400, 150, length);
    LivePointOptions opts{true, scratch.str()};
    std::vector<uint64_t> indices = plan.indicesFor(4);

    // Build and persist the clean library; keep its bytes and its
    // measured truth.
    LivePointLibrary clean(p, plan, cfg, opts);
    clean.ensure(indices);
    auto baseline = clean.measureUnits(indices, false);
    const std::string victim = clean.pointPath(indices[1]);
    std::string good;
    {
        std::ifstream in(victim, std::ios::binary);
        good.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(good.empty());

    // Flip one byte at a time across the whole file (strided to keep
    // the sweep bounded): every flip must be detected — quarantined
    // as rot or deleted as a stale version, never trusted — and the
    // library must heal by re-warming to a bit-identical point.
    size_t step = std::max<size_t>(1, good.size() / 48);
    for (size_t pos = 0; pos < good.size(); pos += step) {
        std::string bad = good;
        bad[pos] ^= 0x40;
        {
            std::ofstream out(victim,
                              std::ios::binary | std::ios::trunc);
            out << bad;
        }
        LivePointLibrary healed(p, plan, cfg, opts);
        healed.ensure(indices);
        for (uint64_t idx : indices)
            ASSERT_NE(healed.at(idx), nullptr) << "byte " << pos;
        EXPECT_EQ(healed.counters().quarantined +
                      healed.counters().versionMisses,
                  1u)
            << "byte " << pos;
        expectUnitsIdentical(healed.measureUnits(indices, false),
                             baseline);
        // The rebuilt point was re-persisted and reads back cleanly.
        LivePoint reread;
        EXPECT_TRUE(LivePoint::loadFile(victim, reread))
            << "byte " << pos;
        fs::remove(victim + ".corrupt");
    }
}

TEST(LivePointLibrary, StaleFormatVersionIsMissNotCorruption)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_lvpt_version");
    Program p = loopProgram();
    FunctionalSim probe(p);
    uint64_t length = probe.fastForward(~0ULL);
    SimConfig cfg = architecturalConfig(1);
    SamplingPlan plan = SamplingPlan::make(400, 150, length);
    LivePointOptions opts{true, scratch.str()};
    std::vector<uint64_t> indices = plan.indicesFor(2);

    LivePointLibrary clean(p, plan, cfg, opts);
    clean.ensure(indices);
    auto baseline = clean.measureUnits(indices, false);
    const std::string path = clean.pointPath(indices[0]);

    // Re-frame the valid payload under the next format generation:
    // a cleanly-framed stale version is a miss, not rot.
    std::string payload = clean.at(indices[0])->encode();
    ASSERT_TRUE(writeArtifact(path, "yasim-lvpt",
                              kLivePointFormatVersion + 1, payload)
                    .ok);

    LivePointLibrary healed(p, plan, cfg, opts);
    healed.ensure(indices);
    EXPECT_EQ(healed.counters().versionMisses, 1u);
    EXPECT_EQ(healed.counters().quarantined, 0u);
    EXPECT_FALSE(fs::exists(path + ".corrupt"));
    // Rebuilt, re-persisted under the current version, bit-identical.
    LivePoint reread;
    EXPECT_TRUE(LivePoint::loadFile(path, reread));
    expectUnitsIdentical(healed.measureUnits(indices, false), baseline);
}

TEST(LivePointLibrary, CancelStormLeavesNoPartialEntries)
{
    ScratchDir scratch("yasim_lvpt_storm");
    Program p = loopProgram(20'000);
    FunctionalSim probe(p);
    uint64_t length = probe.fastForward(~0ULL);
    SimConfig cfg = architecturalConfig(1);
    SamplingPlan plan = SamplingPlan::make(400, 150, length);
    LivePointOptions opts{true, scratch.str()};
    std::vector<uint64_t> indices = plan.indicesFor(8);

    int cancelled = 0;
    for (int round = 0; round < 8; ++round) {
        failpoint::ScopedSchedule storm(
            "engine.cancel.token=1in5,seed=" + std::to_string(round));
        LivePointLibrary library(p, plan, cfg, opts);
        CancelSource source;
        try {
            library.ensure(indices, source.token());
            library.measureUnits(indices, true, source.token());
        } catch (const CancelledError &) {
            ++cancelled;
        }
        // However the round died: the directory holds only complete,
        // cleanly-loading point files — atomic publish means a
        // cancelled build leaves no partial entry behind.
        for (const auto &entry : fs::directory_iterator(scratch.path())) {
            std::string name = entry.path().filename().string();
            ASSERT_TRUE(name.rfind("lp-", 0) == 0)
                << "stray file " << name << " in round " << round;
            LivePoint loaded;
            EXPECT_TRUE(
                LivePoint::loadFile(entry.path().string(), loaded))
                << name << " unreadable in round " << round;
        }
    }
    EXPECT_GE(cancelled, 1) << "the storm never fired";

    // Disarmed, the survivors plus rebuilds serve results
    // bit-identical to a cold library in a fresh directory.
    failpoint::ScopedSchedule off("");
    LivePointLibrary after(p, plan, cfg, opts);
    after.ensure(indices);
    ScratchDir fresh("yasim_lvpt_storm_fresh");
    LivePointLibrary cold(p, plan, cfg,
                          LivePointOptions{true, fresh.str()});
    cold.ensure(indices);
    expectUnitsIdentical(after.measureUnits(indices, false),
                         cold.measureUnits(indices, false));
}

// ------------------------------------------- fast-forward region point

TEST(FastForwardDetailedRegion, PersistedPointMatchesPlainFastForward)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_lvpt_ff");
    Program p = loopProgram();
    LivePointOptions opts{true, scratch.str()};
    constexpr uint64_t kJump = 5000;

    FunctionalSim plain(p);
    uint64_t plain_done = plain.fastForward(kJump);

    LivePointCounters ctr;
    FunctionalSim first(p);
    EXPECT_EQ(fastForwardDetailedRegion(first, kJump, 1000, opts, &ctr),
              plain_done);
    EXPECT_EQ(ctr.diskWrites, 1u);

    // Second sim: the jump is served from the persisted point, and
    // the restored state is indistinguishable from stepping there.
    FunctionalSim second(p);
    EXPECT_EQ(
        fastForwardDetailedRegion(second, kJump, 1000, opts, &ctr),
        plain_done);
    EXPECT_EQ(ctr.diskLoads, 1u);
    EXPECT_EQ(second.instsExecuted(), plain.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(second.intReg(r), plain.intReg(r)) << "r" << r;

    // Running both to completion stays bit-identical.
    plain.fastForward(~0ULL);
    second.fastForward(~0ULL);
    EXPECT_EQ(second.instsExecuted(), plain.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(second.intReg(r), plain.intReg(r)) << "r" << r;

    // Disabled options fall straight through to plain fast-forward.
    FunctionalSim bare(p);
    EXPECT_EQ(fastForwardDetailedRegion(
                  bare, kJump, 1000, LivePointOptions{false, ""}),
              plain_done);
}

// ------------------------------------------------ exactness contract

TEST(Smarts, LivePointParallelBitIdenticalAcrossSuite)
{
    failpoint::ScopedSchedule off("");
    SuiteConfig suite;
    suite.referenceInstructions = 150'000;
    DirectService service;
    SimConfig cfg = architecturalConfig(1);
    Smarts smarts(800, 300);

    for (const std::string &bench : benchmarkNames()) {
        TechniqueContext seq_ctx =
            TechniqueContext::make(bench, suite, service);
        TechniqueContext par_ctx = seq_ctx;
        seq_ctx.livepoints.enabled = false;
        par_ctx.livepoints.enabled = true;
        TechniqueResult seq = smarts.run(seq_ctx, cfg);
        TechniqueResult par = smarts.run(par_ctx, cfg);
        SCOPED_TRACE(bench);
        expectBitIdentical(seq, par);
    }
}

TEST(Smarts, ReplayModeParallelMatchesLiveSerial)
{
    failpoint::ScopedSchedule off("");
    SuiteConfig suite;
    suite.referenceInstructions = 150'000;
    SimConfig cfg = architecturalConfig(1);
    Smarts smarts(800, 300);

    // Replay-mode parallel: warm-only points over a recorded trace.
    ExperimentEngine engine;
    TechniqueContext replay_ctx = engine.context("gzip", suite);
    ASSERT_NE(replay_ctx.traces, nullptr);
    replay_ctx.livepoints.enabled = true;
    TechniqueResult replay_par = smarts.run(replay_ctx, cfg);

    // Live-mode serial: the ground truth.
    DirectService service;
    TechniqueContext live_ctx =
        TechniqueContext::make("gzip", suite, service);
    live_ctx.livepoints.enabled = false;
    TechniqueResult live_seq = smarts.run(live_ctx, cfg);

    expectBitIdentical(replay_par, live_seq);
}

TEST(Smarts, PersistedLibraryServesRerunsWithoutRebuilding)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_lvpt_rerun");
    SuiteConfig suite;
    suite.referenceInstructions = 150'000;
    DirectService service;
    SimConfig cfg = architecturalConfig(1);
    Smarts smarts(800, 300);

    TechniqueContext ctx =
        TechniqueContext::make("gzip", suite, service);
    ctx.livepoints.enabled = true;
    ctx.livepoints.dir = scratch.str();
    TechniqueResult cold = smarts.run(ctx, cfg);
    ASSERT_FALSE(fs::is_empty(scratch.path()));
    TechniqueResult warm = smarts.run(ctx, cfg);
    // Same estimate, same modeled cost: disk state never leaks into
    // results or work units.
    expectBitIdentical(cold, warm);
}

} // namespace
} // namespace yasim
