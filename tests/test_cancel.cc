/**
 * @file
 * Cooperative cancellation and deadlines (support/cancel.hh and every
 * seam it threads through): token/source semantics, the deterministic
 * "engine.cancel.token" failpoint, the shared Backoff policy, the
 * core's batch-boundary latency bound, pool and sharded unwinding, the
 * engine's never-cache-a-cancelled-run contract, and a failpoint-storm
 * torture loop followed by a clean bit-identical verification pass.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "isa/program_builder.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "sim/sharded.hh"
#include "support/backoff.hh"
#include "support/cancel.hh"
#include "support/failpoint.hh"
#include "support/parallel.hh"
#include "techniques/full_reference.hh"
#include "techniques/service.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kRefInsts = 150'000;

/** A simple ALU loop with independent operations (high ILP). */
Program
ilpLoop(uint64_t trips)
{
    ProgramBuilder b("ilp");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, static_cast<int64_t>(trips));
    b.bind(top);
    b.addi(3, 3, 1);
    b.addi(4, 4, 1);
    b.addi(5, 5, 1);
    b.addi(6, 6, 1);
    b.addi(7, 7, 1);
    b.addi(8, 8, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

/** A scratch cache directory wiped before and after each use. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
    std::string str() const { return dir.string(); }

  private:
    fs::path dir;
};

bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void
expectBitIdentical(const TechniqueResult &a, const TechniqueResult &b)
{
    EXPECT_TRUE(bitEq(a.cpi, b.cpi));
    EXPECT_TRUE(bitEq(a.workUnits, b.workUnits));
    EXPECT_EQ(a.detailedInsts, b.detailedInsts);
    EXPECT_EQ(a.detailed.instructions, b.detailed.instructions);
    EXPECT_EQ(a.detailed.cycles, b.detailed.cycles);
}

// ------------------------------------------------- token semantics

TEST(CancelToken, InvalidTokenNeverFires)
{
    // Even with the failpoint armed on every evaluation: an invalid
    // token's poll is a null check and must never reach the site.
    failpoint::ScopedSchedule always("engine.cancel.token=always");
    CancelToken token;
    EXPECT_FALSE(token.valid());
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.cause(), CancelCause::None);
    EXPECT_EQ(failpoint::stats("engine.cancel.token").evaluations, 0u);
}

TEST(CancelSource, FirstCauseWins)
{
    failpoint::ScopedSchedule off("");
    CancelSource source;
    CancelToken token = source.token();
    EXPECT_FALSE(token.cancelled());

    source.cancel(CancelCause::Cancelled);
    source.cancel(CancelCause::DeadlineExceeded);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.cause(), CancelCause::Cancelled);
    EXPECT_TRUE(source.expired());
    EXPECT_EQ(source.cause(), CancelCause::Cancelled);

    // And the other way round: a deadline that already fired blocks a
    // later explicit cancel from rewriting the cause.
    CancelSource late;
    late.setDeadlineAfterMs(-1);
    EXPECT_TRUE(late.expired());
    late.cancel(CancelCause::Cancelled);
    EXPECT_EQ(late.cause(), CancelCause::DeadlineExceeded);
}

TEST(CancelSource, DeadlineTripsAsDeadlineExceeded)
{
    failpoint::ScopedSchedule off("");
    CancelSource source;
    EXPECT_EQ(source.deadlineAtMs(), INT64_MAX);

    source.setDeadlineAfterMs(60'000);
    EXPECT_NE(source.deadlineAtMs(), INT64_MAX);
    EXPECT_FALSE(source.expired());
    EXPECT_EQ(source.cause(), CancelCause::None);

    source.setDeadlineAfterMs(-1);
    CancelToken token = source.token();
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.cause(), CancelCause::DeadlineExceeded);
}

TEST(CancelFailpoint, AfterScheduleFiresOnTheExactPoll)
{
    // "after3" fires exactly once, on the fourth evaluation — this is
    // what makes cancellation tests timer-free and deterministic.
    failpoint::ScopedSchedule sched("engine.cancel.token=after3");
    CancelSource source;
    CancelToken token = source.token();
    for (int poll = 0; poll < 3; ++poll)
        EXPECT_FALSE(token.cancelled()) << "poll " << poll;
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.cause(), CancelCause::Cancelled);
    // Sticky thereafter, with no further site evaluations needed.
    EXPECT_TRUE(token.cancelled());
}

// ------------------------------------------- the shared Backoff

TEST(BackoffPolicy, DeterministicBoundedAndResettable)
{
    Backoff a(42), b(42);
    for (uint32_t attempt = 0; attempt < 12; ++attempt) {
        uint64_t delay = a.nextDelayMs();
        EXPECT_EQ(delay, b.nextDelayMs()) << "attempt " << attempt;
        // Full jitter over a capped exponential window.
        uint64_t window = attempt < 6 ? (uint64_t(1) << attempt) : 64;
        EXPECT_LE(delay, window) << "attempt " << attempt;
    }
    EXPECT_EQ(a.attempts(), 12u);

    // reset() shrinks the window back to the base; the jitter stream
    // keeps advancing (it is a policy stream, not a replay).
    a.reset();
    EXPECT_EQ(a.attempts(), 0u);
    EXPECT_LE(a.nextDelayMs(), 1u);
}

// ------------------------------------------- core latency bound

TEST(OooCoreCancel, PreCancelledRunStopsWithinOneQuantum)
{
    failpoint::ScopedSchedule off("");
    Program program = ilpLoop(8000); // ~64k dynamic instructions
    FunctionalSim fsim(program);
    OooCore core{SimConfig{}};
    CancelSource source;
    source.cancel();

    uint64_t done = core.run(fsim, ~0ULL, nullptr, source.token());
    // The poll cadence is kCancelCheckInsts; the first poll must see
    // the cancel and return, so the run commits one quantum, give or
    // take one fetch batch — never the whole program.
    EXPECT_GE(done, OooCore::kCancelCheckInsts);
    EXPECT_LT(done, OooCore::kCancelCheckInsts + 512);
    EXPECT_EQ(core.instsRetired(), done);
}

TEST(OooCoreCancel, FailpointCancelIsDeterministicAcrossRuns)
{
    auto cancelledRun = [] {
        failpoint::ScopedSchedule sched("engine.cancel.token=after2");
        Program program = ilpLoop(8000);
        FunctionalSim fsim(program);
        OooCore core{SimConfig{}};
        CancelSource source;
        return core.run(fsim, ~0ULL, nullptr, source.token());
    };
    uint64_t first = cancelledRun();
    // Fires on the third batch-boundary poll: under three quanta plus
    // one fetch batch, and identical on every run.
    EXPECT_LT(first, 3 * OooCore::kCancelCheckInsts + 512);
    EXPECT_GE(first, 2 * OooCore::kCancelCheckInsts);
    EXPECT_EQ(cancelledRun(), first);
}

TEST(OooCoreCancel, UncancelledValidTokenIsBitIdentical)
{
    failpoint::ScopedSchedule off("");
    SimConfig config;
    Program program = ilpLoop(3000);

    FunctionalSim plain_src(program);
    OooCore plain{config};
    plain.run(plain_src, ~0ULL);

    FunctionalSim token_src(program);
    OooCore tokened{config};
    CancelSource source;
    tokened.run(token_src, ~0ULL, nullptr, source.token());

    SimStats a = plain.snapshot(), b = tokened.snapshot();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
}

// ------------------------------------------------- pool unwinding

TEST(ThreadPoolCancel, PreCancelledMapRunsNothing)
{
    failpoint::ScopedSchedule off("");
    CancelSource source;
    source.cancel();
    std::atomic<int> executed{0};
    std::vector<int> results = parallelMap<int>(
        1000,
        [&](size_t) {
            ++executed;
            return 1;
        },
        source.token());
    EXPECT_EQ(executed.load(), 0);
    ASSERT_EQ(results.size(), 1000u);
    for (int r : results)
        EXPECT_EQ(r, 0); // skipped slots stay default-constructed
}

TEST(ThreadPoolCancel, MidMapCancelSkipsUnclaimedWork)
{
    failpoint::ScopedSchedule off("");
    constexpr size_t kCount = 100'000;
    CancelSource source;
    std::atomic<size_t> executed{0};
    std::vector<int> results = parallelMap<int>(
        kCount,
        [&](size_t) {
            source.cancel(); // first task cancels everyone
            ++executed;
            return 1;
        },
        source.token());
    // The call returned (no hang) and the sweep skipped nearly all of
    // the map: only tasks already claimed when the cancel landed ran.
    EXPECT_GT(executed.load(), 0u);
    EXPECT_LT(executed.load(), kCount);
    size_t ran = 0;
    for (int r : results)
        ran += size_t(r);
    EXPECT_EQ(ran, executed.load());
}

// ------------------------------------------------ sharded stitches

TEST(ShardedCancel, RefusesToStitchAPartialRun)
{
    failpoint::ScopedSchedule off("");
    Program program = ilpLoop(40'000); // ~320k dynamic instructions
    constexpr uint64_t kLength = 200'000;
    ShardOptions opts;
    opts.shards = 4;
    CancelSource source;
    source.cancel();

    bool threw = false;
    try {
        runShardedReference(program, kLength, SimConfig{}, opts,
                            source.token());
    } catch (const CancelledError &err) {
        threw = true;
        EXPECT_EQ(err.cause, CancelCause::Cancelled);
        // Honest partial accounting, never a full-length claim.
        EXPECT_LT(err.detailedInsts, kLength);
    }
    EXPECT_TRUE(threw)
        << "a cancelled sharded run stitched whole-run statistics";
}

// ------------------------------------------------------ the engine

TEST(EngineCancel, CancelledRunIsChargedButNeverCached)
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    ExperimentEngine engine;
    TechniqueContext ctx = engine.context("gzip", suite);
    FullReference reference;
    SimConfig config = architecturalConfig(2);

    {
        failpoint::ScopedSchedule sched("engine.cancel.token=after4");
        CancelSource source;
        ctx.cancel = source.token();
        bool threw = false;
        try {
            engine.run(reference, ctx, config);
        } catch (const CancelledError &err) {
            threw = true;
            EXPECT_EQ(err.cause, CancelCause::Cancelled);
        }
        ASSERT_TRUE(threw);
    }
    EngineCounters after = engine.counters();
    EXPECT_EQ(after.runsCancelled, 1u);
    EXPECT_EQ(after.runsExecuted, 0u);
    EXPECT_EQ(after.memoHits, 0u);

    // The retry must recompute (nothing was memoized) and come back
    // bit-identical to a never-cancelled engine.
    failpoint::ScopedSchedule off("");
    ctx.cancel = CancelToken();
    TechniqueResult retried = engine.run(reference, ctx, config);
    EXPECT_EQ(engine.counters().runsExecuted, 1u);

    ExperimentEngine clean;
    TechniqueResult fresh =
        clean.run(reference, clean.context("gzip", suite), config);
    expectBitIdentical(retried, fresh);
}

TEST(EngineCancel, AbortedCacheWritesLeaveNoArtifacts)
{
    ScratchDir scratch("yasim_cancel_aborted_writes");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    FullReference reference;
    SimConfig config = architecturalConfig(1);

    TechniqueResult result;
    {
        // Every result publish aborts at the last moment, as if the
        // request were cancelled between completion and write.
        failpoint::ScopedSchedule sched("engine.cancel.write=always");
        ExperimentEngine engine(
            {.cacheDir = scratch.str(), .traces = false});
        result = engine.run(
            reference, engine.context("gzip", suite), config);
        EXPECT_GT(result.workUnits, 0.0);
        EXPECT_GE(engine.counters().cacheWritesAborted, 1u);
    }
    // The abort happened before the atomic publish: no .result file
    // exists at all — in particular, never a torn one.
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        EXPECT_NE(entry.path().extension(), ".result")
            << "aborted write still published "
            << entry.path().filename();

    // A cold engine over the directory therefore recomputes, and the
    // recomputation is bit-identical.
    failpoint::ScopedSchedule off("");
    ExperimentEngine cold({.cacheDir = scratch.str(), .traces = false});
    TechniqueResult recomputed =
        cold.run(reference, cold.context("gzip", suite), config);
    EXPECT_EQ(cold.counters().runsExecuted, 1u);
    expectBitIdentical(recomputed, result);
}

TEST(EngineCancel, TortureStormThenCleanVerify)
{
    // The cancellation analogue of the crash-torture test: hammer one
    // shared cache directory with runs whose polls and publishes fail
    // pseudo-randomly, then disarm everything and prove the directory
    // still serves bit-identical results.
    ScratchDir scratch("yasim_cancel_torture");
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    FullReference reference;
    SimConfig config = architecturalConfig(1);

    int cancelled = 0;
    for (int round = 0; round < 6; ++round) {
        failpoint::ScopedSchedule sched(
            "engine.cancel.token=1in4,engine.cancel.write=1in3,seed=" +
            std::to_string(round));
        ExperimentEngine engine(
            {.cacheDir = scratch.str(), .traces = false});
        TechniqueContext ctx = engine.context("gzip", suite);
        CancelSource source;
        ctx.cancel = source.token();
        try {
            engine.run(reference, ctx, config);
        } catch (const CancelledError &) {
            ++cancelled;
            EXPECT_EQ(engine.counters().runsCancelled, 1u);
        }
    }
    // The schedule must have actually cancelled something, or the
    // storm was vacuous.
    EXPECT_GE(cancelled, 1);

    failpoint::ScopedSchedule off("");
    ExperimentEngine after({.cacheDir = scratch.str(), .traces = false});
    TechniqueResult survived =
        after.run(reference, after.context("gzip", suite), config);

    ExperimentEngine clean;
    TechniqueResult fresh =
        clean.run(reference, clean.context("gzip", suite), config);
    expectBitIdentical(survived, fresh);
}

} // namespace
} // namespace yasim
