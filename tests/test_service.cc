/**
 * @file
 * The experiment service: protocol codec, frame fuzzing, cache-key
 * stamping, JsonReport, and the daemon under concurrency and faults.
 *
 * The fuzz tests are exhaustive over the interesting corruption space
 * of one frame — every truncation length and a bit flip in every byte
 * — because the daemon's drop-on-protocol-error policy is only safe if
 * no corrupted frame can ever decode. The daemon tests run a real
 * ServiceDaemon on a private Unix socket and prove the multi-tenant
 * contract: bit-identical results, quota rejection, graceful drain
 * that loses no accepted job, and survival of garbage and
 * failpoint-corrupted streams.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "engine/cache_key.hh"
#include "engine/result_io.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "support/artifact_io.hh"
#include "support/failpoint.hh"

using namespace yasim;

namespace {

ExperimentRequest
sampleRequest()
{
    ExperimentRequest request;
    request.id = 42;
    request.kind = RequestKind::Run;
    request.priority = 3;
    request.benchmark = "gzip";
    request.technique = "reference";
    request.config = "arch:2";
    request.suite.referenceInstructions = 150000;
    request.suite.seed = 99;
    return request;
}

/** status + error + exact result bytes (the bit-identity oracle). */
std::string
fingerprint(const ExperimentResponse &response)
{
    std::ostringstream os;
    os << uint32_t(response.status) << "\n" << response.error << "\n";
    if (!response.key.empty())
        writeResult(os, response.key, response.result);
    return os.str();
}

/** Bounded no-clock wait for a daemon-side condition. */
template <typename Cond>
bool
eventually(Cond cond)
{
    for (int i = 0; i < 5000; ++i) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

/** A raw (non-ServiceClient) connection for protocol-level tests. */
class RawConn
{
  public:
    explicit RawConn(const std::string &path)
    {
        fd = socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~RawConn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool ok() const { return fd >= 0; }

    bool
    sendAll(const std::string &bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            ssize_t n = send(fd, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
            if (n <= 0 && errno != EINTR)
                return false;
            if (n > 0)
                sent += size_t(n);
        }
        return true;
    }

    /** Read exactly @p count framed responses (false on disconnect). */
    bool
    readResponses(size_t count, std::vector<ExperimentResponse> &out)
    {
        while (out.size() < count) {
            uint64_t frame_bytes = 0;
            FrameSizeStatus status =
                frameSize(buf, kMaxServicePayload, frame_bytes);
            if (status == FrameSizeStatus::Malformed)
                return false;
            if (status == FrameSizeStatus::Known &&
                buf.size() >= frame_bytes) {
                std::string payload, error;
                if (!decodeFrame(std::string_view(buf).substr(
                                     0, size_t(frame_bytes)),
                                 kResponseMagic, kServiceFormatVersion,
                                 payload, error))
                    return false;
                buf.erase(0, size_t(frame_bytes));
                ExperimentResponse response;
                if (!decodeResponse(payload, response, error))
                    return false;
                out.push_back(std::move(response));
                continue;
            }
            char chunk[4096];
            ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
            if (n == 0)
                return false;
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            buf.append(chunk, size_t(n));
        }
        return true;
    }

    /** True when the daemon closed this connection. */
    bool
    closedByPeer()
    {
        char chunk[256];
        for (;;) {
            ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return false;
        }
    }

  private:
    int fd = -1;
    std::string buf;
};

/** A started daemon on a private Unix socket, torn down on scope exit. */
class DaemonFixture
{
  public:
    explicit DaemonFixture(DaemonOptions options = {})
    {
        char dir_template[] = "/tmp/yasim-test-svc-XXXXXX";
        dir = mkdtemp(dir_template);
        options.socketPath = dir + "/d.sock";
        daemon = std::make_unique<ServiceDaemon>(options, engine);
        std::string error;
        started = daemon->start(error);
        socketPath = options.socketPath;
    }

    ~DaemonFixture()
    {
        daemon->stop();
        daemon.reset();
        ::unlink(socketPath.c_str());
        ::rmdir(dir.c_str());
    }

    ExperimentEngine engine;
    std::unique_ptr<ServiceDaemon> daemon;
    std::string dir;
    std::string socketPath;
    bool started = false;
};

ClientOptions
clientFor(const DaemonFixture &fixture)
{
    ClientOptions options;
    options.socketPath = fixture.socketPath;
    return options;
}

} // namespace

// --- protocol codec ---------------------------------------------------

TEST(ServiceProtocol, RequestRoundTrip)
{
    ExperimentRequest request = sampleRequest();
    ExperimentRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), decoded, error))
        << error;
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.kind, request.kind);
    EXPECT_EQ(decoded.priority, request.priority);
    EXPECT_EQ(decoded.benchmark, request.benchmark);
    EXPECT_EQ(decoded.technique, request.technique);
    EXPECT_EQ(decoded.config, request.config);
    EXPECT_EQ(decoded.suite.referenceInstructions,
              request.suite.referenceInstructions);
    EXPECT_EQ(decoded.suite.seed, request.suite.seed);
}

TEST(ServiceProtocol, ResponseRoundTripWithResult)
{
    ExperimentEngine engine;
    ExperimentResponse response =
        executeRequest(engine, sampleRequest());
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    ASSERT_FALSE(response.key.empty());

    ExperimentResponse decoded;
    std::string error;
    ASSERT_TRUE(
        decodeResponse(encodeResponse(response), decoded, error))
        << error;
    EXPECT_EQ(fingerprint(decoded), fingerprint(response));
    EXPECT_EQ(decoded.id, response.id);
}

TEST(ServiceProtocol, ResponseRoundTripErrorAndReport)
{
    ExperimentResponse response;
    response.id = 7;
    response.status = ResponseStatus::Rejected;
    response.error = "queue full";
    response.report = "{\"k\": 1}\n";
    ExperimentResponse decoded;
    std::string error;
    ASSERT_TRUE(
        decodeResponse(encodeResponse(response), decoded, error));
    EXPECT_EQ(decoded.status, ResponseStatus::Rejected);
    EXPECT_EQ(decoded.error, "queue full");
    EXPECT_EQ(decoded.report, response.report);
    EXPECT_TRUE(decoded.key.empty());
}

TEST(ServiceProtocol, DecodeRejectsMalformedPayloads)
{
    ExperimentRequest request;
    std::string error;
    EXPECT_FALSE(decodeRequest("", request, error));
    EXPECT_FALSE(decodeRequest("junk\n", request, error));

    std::string good = encodeRequest(sampleRequest());
    // Every truncation that clips into the end marker must fail (the
    // final byte is the trailing newline after "end", which the
    // whitespace-tolerant reader accepts; transport integrity is the
    // frame checksum's job).
    for (size_t len = 0; len + 1 < good.size(); ++len)
        EXPECT_FALSE(decodeRequest(good.substr(0, len), request, error))
            << "truncation at " << len << " decoded";
    // Trailing bytes after a well-formed payload must fail too.
    EXPECT_FALSE(decodeRequest(good + "x", request, error));
}

// --- frame layer ------------------------------------------------------

TEST(ServiceFrames, RoundTripAndIncrementalSize)
{
    std::string frame = frameRequest(sampleRequest());

    // Incremental reassembly: every strict prefix is NeedMore or Known
    // (never Malformed), and a Known size always names the full frame.
    for (size_t len = 0; len < frame.size(); ++len) {
        uint64_t size = 0;
        FrameSizeStatus status = frameSize(
            frame.substr(0, len), kMaxServicePayload, size);
        ASSERT_NE(status, FrameSizeStatus::Malformed)
            << "prefix of " << len << " bytes misread as malformed";
        if (status == FrameSizeStatus::Known) {
            EXPECT_EQ(size, frame.size());
        }
    }
    uint64_t size = 0;
    ASSERT_EQ(frameSize(frame, kMaxServicePayload, size),
              FrameSizeStatus::Known);
    EXPECT_EQ(size, frame.size());

    std::string payload, error;
    ASSERT_TRUE(decodeFrame(frame, kRequestMagic,
                            kServiceFormatVersion, payload, error));
    ExperimentRequest decoded;
    ASSERT_TRUE(decodeRequest(payload, decoded, error));
    EXPECT_EQ(decoded.id, sampleRequest().id);
}

TEST(ServiceFrames, EveryTruncationFailsToDecode)
{
    std::string frame = frameRequest(sampleRequest());
    for (size_t len = 0; len < frame.size(); ++len) {
        std::string payload, error;
        EXPECT_FALSE(decodeFrame(frame.substr(0, len), kRequestMagic,
                                 kServiceFormatVersion, payload, error))
            << "truncation at " << len << " decoded";
    }
}

TEST(ServiceFrames, EveryBitFlipFailsToDecode)
{
    std::string frame = frameRequest(sampleRequest());
    for (size_t i = 0; i < frame.size(); ++i) {
        std::string flipped = frame;
        flipped[i] = char(uint8_t(flipped[i]) ^ 0x10);
        std::string payload, error;
        EXPECT_FALSE(decodeFrame(flipped, kRequestMagic,
                                 kServiceFormatVersion, payload, error))
            << "bit flip at byte " << i << " decoded";
    }
}

TEST(ServiceFrames, WrongMagicOrVersionRejected)
{
    std::string frame = frameRequest(sampleRequest());
    std::string payload, error;
    EXPECT_FALSE(decodeFrame(frame, kResponseMagic,
                             kServiceFormatVersion, payload, error));
    EXPECT_FALSE(decodeFrame(frame, kRequestMagic,
                             kServiceFormatVersion + 1, payload, error));
}

TEST(ServiceFrames, OversizedPayloadIsMalformed)
{
    std::string frame = frameRequest(sampleRequest());
    uint64_t size = 0;
    EXPECT_EQ(frameSize(frame, 4, size), FrameSizeStatus::Malformed);
    EXPECT_EQ(frameSize("not a frame at all, definitely",
                        kMaxServicePayload, size),
              FrameSizeStatus::Malformed);
}

// --- selectors and execution -----------------------------------------

TEST(ServiceExecute, ResolvesSelectors)
{
    std::string error;
    ExperimentRequest request = sampleRequest();
    EXPECT_NE(resolveTechnique(request, error), nullptr) << error;

    request.technique = "no-such/family";
    EXPECT_EQ(resolveTechnique(request, error), nullptr);

    request.technique = "reference";
    request.benchmark = "definitely-not-a-benchmark";
    EXPECT_EQ(resolveTechnique(request, error), nullptr);

    SimConfig config;
    request = sampleRequest();
    for (int n = 1; n <= 4; ++n) {
        request.config = "arch:" + std::to_string(n);
        EXPECT_TRUE(resolveConfig(request, config, error)) << error;
    }
    request.config = "arch:0";
    EXPECT_FALSE(resolveConfig(request, config, error));
    request.config = "pb:0";
    EXPECT_TRUE(resolveConfig(request, config, error)) << error;
    request.config = "pb:100000";
    EXPECT_FALSE(resolveConfig(request, config, error));
    request.config = "nonsense";
    EXPECT_FALSE(resolveConfig(request, config, error));
}

TEST(ServiceExecute, RunIsMemoizedAndDeterministic)
{
    ExperimentEngine engine;
    ExperimentResponse first =
        executeRequest(engine, sampleRequest());
    ASSERT_EQ(first.status, ResponseStatus::Ok);
    EXPECT_NE(first.key.find("v1|bench=gzip|"), std::string::npos);
    EXPECT_GT(first.result.cpi, 0.0);

    ExperimentResponse second =
        executeRequest(engine, sampleRequest());
    EXPECT_EQ(fingerprint(second), fingerprint(first));
    EXPECT_GE(engine.counters().memoHits, 1u);
}

TEST(ServiceExecute, ValidationFailuresAreErrors)
{
    ExperimentEngine engine;
    ExperimentRequest request = sampleRequest();
    request.suite.referenceInstructions = 10;
    EXPECT_EQ(executeRequest(engine, request).status,
              ResponseStatus::Error);

    request = sampleRequest();
    request.benchmark = "nope";
    EXPECT_EQ(executeRequest(engine, request).status,
              ResponseStatus::Error);

    request = sampleRequest();
    request.config = "arch:9";
    EXPECT_EQ(executeRequest(engine, request).status,
              ResponseStatus::Error);
}

// --- cache-key stamping (satellite: guarded key layout) ---------------

TEST(CacheKeyStamper, HistoricalLayoutPreservedByteForByte)
{
    std::string key = resultKeyStamper()
                          .stamp("bench", "gzip")
                          .stamp("suite", "ref=1000,seed=2")
                          .stamp("cost", "C")
                          .stamp("tech", "reference|full")
                          .stamp("cfg", "X")
                          .finish();
    EXPECT_EQ(key,
              "v1|bench=gzip|ref=1000,seed=2|cost=C|"
              "tech=reference|full|cfg=X");

    std::string sharded = resultKeyStamper()
                              .stamp("bench", "gzip")
                              .stamp("suite", "ref=1000,seed=2")
                              .stamp("cost", "C")
                              .stamp("shards",
                                     "shards{n=2,warm=500,stitch=sum}")
                              .stamp("tech", "reference|full")
                              .stamp("cfg", "X")
                              .finish();
    EXPECT_EQ(sharded,
              "v1|bench=gzip|ref=1000,seed=2|cost=C|"
              "shards{n=2,warm=500,stitch=sum}|"
              "tech=reference|full|cfg=X");

    std::string reflen = referenceLengthKeyStamper()
                             .stamp("bench", "gzip")
                             .stamp("suite", "ref=1000,seed=2")
                             .finish();
    EXPECT_EQ(reflen, "v1|reflen|bench=gzip|ref=1000,seed=2");
}

TEST(CacheKeyStamperDeath, MisuseIsDiagnosed)
{
    EXPECT_DEATH(resultKeyStamper().stamp("flavor", "x"),
                 "unknown cache-key segment");
    EXPECT_DEATH(resultKeyStamper()
                     .stamp("bench", "a")
                     .stamp("bench", "b"),
                 "duplicate cache-key segment");
    // "shards" is optional, so everything up to "tech" can be stamped
    // without it — going back to it afterwards is out of order.
    EXPECT_DEATH(resultKeyStamper()
                     .stamp("bench", "a")
                     .stamp("suite", "s")
                     .stamp("cost", "c")
                     .stamp("tech", "t")
                     .stamp("shards", "shards{}"),
                 "out of canonical order");
    EXPECT_DEATH(resultKeyStamper().stamp("cost", "c"),
                 "skipped");
    EXPECT_DEATH(resultKeyStamper().stamp("bench", ""),
                 "empty cache-key segment");
    EXPECT_DEATH(resultKeyStamper().stamp("bench", "a").finish(),
                 "without required segment");
}

// --- JsonReport (satellite: one versioned JSON schema) ----------------

TEST(JsonReportTest, RenderParseRoundTrip)
{
    JsonReport report("unit-test");
    report.setCount("answers", 42);
    report.setNumber("ratio", 0.25);
    report.setBool("flag", true);
    report.setText("label", "a \"quoted\"\nvalue");

    JsonReport parsed("");
    ASSERT_TRUE(parseReport(report.render(), parsed));
    EXPECT_EQ(parsed.kind(), "unit-test");
    EXPECT_EQ(parsed.count("answers"), 42u);
    EXPECT_DOUBLE_EQ(parsed.number("ratio"), 0.25);
    EXPECT_TRUE(parsed.boolean("flag"));
    EXPECT_EQ(parsed.text("label"), "a \"quoted\"\nvalue");
    // Round-trips byte-identically (field order is insertion order).
    EXPECT_EQ(parsed.render(), report.render());
}

TEST(JsonReportTest, OverwritingKeepsPositionAndEnvelopeIsStrict)
{
    JsonReport report("unit-test");
    report.setCount("first", 1);
    report.setCount("second", 2);
    report.setCount("first", 10);
    std::string rendered = report.render();
    EXPECT_LT(rendered.find("\"first\": 10"),
              rendered.find("\"second\": 2"));

    JsonReport parsed("");
    EXPECT_FALSE(parseReport("", parsed));
    EXPECT_FALSE(parseReport("{}", parsed));
    EXPECT_FALSE(parseReport("{\"schema\": \"other\", "
                             "\"schema_version\": 1, "
                             "\"kind\": \"x\"}",
                             parsed));
    EXPECT_FALSE(parseReport("{\"schema\": \"yasim-report\", "
                             "\"schema_version\": 999, "
                             "\"kind\": \"x\"}",
                             parsed));
    EXPECT_TRUE(parseReport("{\"schema\": \"yasim-report\", "
                            "\"schema_version\": 1, "
                            "\"kind\": \"x\"}",
                            parsed));
    EXPECT_FALSE(parseReport(report.render() + "trailing", parsed));
}

// --- the daemon -------------------------------------------------------

TEST(ServiceDaemonTest, PingStatsAndRunBitIdentity)
{
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    ServiceClient client(clientFor(fixture));
    ExperimentResponse response;
    std::string error;

    ExperimentRequest ping;
    ping.id = 1;
    ping.kind = RequestKind::Ping;
    ASSERT_TRUE(client.call(ping, response, error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.id, 1u);

    ExperimentRequest run = sampleRequest();
    run.id = 2;
    ASSERT_TRUE(client.call(run, response, error)) << error;
    ASSERT_EQ(response.status, ResponseStatus::Ok);

    // Bit-identical to a direct in-process execution.
    ExperimentEngine local;
    ExperimentResponse direct = executeRequest(local, run);
    EXPECT_EQ(fingerprint(response), fingerprint(direct));
    EXPECT_EQ(response.key, direct.key);

    ExperimentRequest stats;
    stats.id = 3;
    stats.kind = RequestKind::Stats;
    ASSERT_TRUE(client.call(stats, response, error)) << error;
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    JsonReport parsed("");
    ASSERT_TRUE(parseReport(response.report, parsed));
    EXPECT_EQ(parsed.kind(), "service-stats");
    EXPECT_GE(parsed.count("svc_connections_accepted"), 1u);
    EXPECT_EQ(parsed.count("svc_jobs_executed"), 1u);
    EXPECT_TRUE(parsed.has("runs_executed"));
}

TEST(ServiceDaemonTest, QuotaRejectsBurstBeyondBound)
{
    DaemonOptions options;
    options.clientQuota = 2;
    DaemonFixture fixture(options);
    ASSERT_TRUE(fixture.started);

    // Four Run frames in one write: the daemon decodes them in one
    // buffered pass, so exactly quota-many are admitted before any
    // response can lower the outstanding count.
    std::string burst;
    for (uint64_t id = 1; id <= 4; ++id) {
        ExperimentRequest request = sampleRequest();
        request.id = id;
        request.priority = 1;
        burst += frameRequest(request);
    }
    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(burst));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(4, responses));
    size_t ok = 0, rejected = 0;
    for (const ExperimentResponse &response : responses) {
        if (response.status == ResponseStatus::Ok)
            ++ok;
        if (response.status == ResponseStatus::Rejected) {
            ++rejected;
            EXPECT_NE(response.error.find("quota"), std::string::npos);
        }
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(rejected, 2u);
    EXPECT_EQ(fixture.daemon->counters().rejectedQuota, 2u);
}

TEST(ServiceDaemonTest, DrainFinishesEveryAcceptedJob)
{
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    constexpr size_t kJobs = 6;
    std::string burst;
    for (uint64_t id = 1; id <= kJobs; ++id) {
        ExperimentRequest request = sampleRequest();
        request.id = id;
        request.config = "arch:" + std::to_string(id % 4 + 1);
        burst += frameRequest(request);
    }
    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(burst));

    // Once all six are accepted, drain mid-flight. Every accepted job
    // must still produce its response before the daemon exits.
    ASSERT_TRUE(eventually([&] {
        return fixture.daemon->counters().jobsAccepted == kJobs;
    }));
    fixture.daemon->requestDrain();

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(kJobs, responses));
    for (const ExperimentResponse &response : responses)
        EXPECT_EQ(response.status, ResponseStatus::Ok);

    fixture.daemon->wait();
    DaemonCounters counters = fixture.daemon->counters();
    EXPECT_EQ(counters.jobsAccepted, kJobs);
    EXPECT_EQ(counters.jobsExecuted, kJobs);
    EXPECT_EQ(counters.responsesDropped, 0u);
}

TEST(ServiceDaemonTest, ShutdownRequestRejectsLaterRunsAndDrains)
{
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    // One write: [shutdown][run]. Decoded in order, so the run must be
    // rejected as draining, and both responses must still flush.
    ExperimentRequest shutdown;
    shutdown.id = 1;
    shutdown.kind = RequestKind::Shutdown;
    ExperimentRequest run = sampleRequest();
    run.id = 2;
    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        conn.sendAll(frameRequest(shutdown) + frameRequest(run)));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(2, responses));
    EXPECT_EQ(responses[0].id, 1u);
    EXPECT_EQ(responses[0].status, ResponseStatus::Ok);
    EXPECT_EQ(responses[1].id, 2u);
    EXPECT_EQ(responses[1].status, ResponseStatus::Rejected);
    EXPECT_EQ(responses[1].error, "draining");

    fixture.daemon->wait();
    EXPECT_EQ(fixture.daemon->counters().rejectedDraining, 1u);
}

TEST(ServiceDaemonTest, GarbageBytesDropOnlyThatConnection)
{
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    RawConn bad(fixture.socketPath);
    ASSERT_TRUE(bad.ok());
    ASSERT_TRUE(bad.sendAll("this is definitely not an artifact frame"));
    EXPECT_TRUE(bad.closedByPeer());
    EXPECT_TRUE(eventually([&] {
        return fixture.daemon->counters().protocolErrors >= 1;
    }));

    // The daemon survives and keeps serving other tenants.
    ServiceClient client(clientFor(fixture));
    ExperimentRequest ping;
    ping.id = 1;
    ping.kind = RequestKind::Ping;
    ExperimentResponse response;
    std::string error;
    ASSERT_TRUE(client.call(ping, response, error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::Ok);
}

TEST(ServiceDaemonTest, ConcurrentClientsShareOneCache)
{
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    constexpr size_t kClients = 3;
    constexpr size_t kRequests = 4;
    std::vector<ExperimentRequest> grid;
    for (size_t r = 0; r < kRequests; ++r) {
        ExperimentRequest request = sampleRequest();
        request.config = "arch:" + std::to_string(r % 4 + 1);
        grid.push_back(request);
    }

    std::vector<std::vector<ExperimentResponse>> all(kClients);
    // char, not bool: vector<bool> packs bits, so concurrent per-client
    // writes would share a word.
    std::vector<char> ok(kClients, 0);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<ExperimentRequest> mine = grid;
            for (size_t r = 0; r < mine.size(); ++r)
                mine[r].id = c * 100 + r + 1;
            ServiceClient client(clientFor(fixture));
            BatchStats stats;
            std::string error;
            ok[c] = client.runBatch(mine, all[c], stats, error);
        });
    }
    for (std::thread &t : threads)
        t.join();

    ExperimentEngine local;
    for (size_t c = 0; c < kClients; ++c) {
        ASSERT_TRUE(ok[c]);
        ASSERT_EQ(all[c].size(), kRequests);
        for (size_t r = 0; r < kRequests; ++r) {
            EXPECT_EQ(all[c][r].id, c * 100 + r + 1);
            EXPECT_EQ(fingerprint(all[c][r]),
                      fingerprint(executeRequest(local, grid[r])));
        }
    }
    // kRequests distinct cells across kClients * kRequests executions:
    // after each cell's first computation, every other execution was a
    // memo hit or joined the computation in flight.
    EngineCounters counters = fixture.engine.counters();
    EXPECT_GE(counters.memoHits + counters.inflightJoins,
              (kClients - 1) * kRequests);
}

TEST(ServiceDaemonTest, SurvivesCorruptFramesViaReconnect)
{
    failpoint::ScopedSchedule faults("svc.read.corrupt=1in5,seed=11");
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    std::vector<ExperimentRequest> batch;
    for (uint64_t id = 1; id <= 8; ++id) {
        ExperimentRequest request = sampleRequest();
        request.id = id;
        request.config = "arch:" + std::to_string(id % 4 + 1);
        batch.push_back(request);
    }
    ServiceClient client(clientFor(fixture));
    std::vector<ExperimentResponse> responses;
    BatchStats stats;
    std::string error;
    ASSERT_TRUE(client.runBatch(batch, responses, stats, error))
        << error;
    ASSERT_EQ(responses.size(), batch.size());

    ExperimentEngine local;
    for (size_t r = 0; r < batch.size(); ++r) {
        EXPECT_EQ(responses[r].id, batch[r].id);
        EXPECT_EQ(fingerprint(responses[r]),
                  fingerprint(executeRequest(local, batch[r])));
    }
    EXPECT_EQ(stats.completed, batch.size());
}

TEST(ServiceDaemonTest, AcceptTransientsRetryFromBacklog)
{
    failpoint::ScopedSchedule faults("svc.accept.transient=1in2,seed=5");
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    for (uint64_t id = 1; id <= 6; ++id) {
        ServiceClient client(clientFor(fixture));
        ExperimentRequest ping;
        ping.id = id;
        ping.kind = RequestKind::Ping;
        ExperimentResponse response;
        std::string error;
        ASSERT_TRUE(client.call(ping, response, error)) << error;
        EXPECT_EQ(response.status, ResponseStatus::Ok);
    }
    EXPECT_GE(fixture.daemon->counters().acceptTransients, 1u);
}

// --- deadlines, cancellation, shedding (protocol v2) -------------------

TEST(ServiceProtocol, DeadlineAndCancelFieldsRoundTrip)
{
    ExperimentRequest request = sampleRequest();
    request.deadlineMs = 1234;
    ExperimentRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), decoded, error))
        << error;
    EXPECT_EQ(decoded.deadlineMs, 1234u);
    EXPECT_EQ(decoded.target, 0u);

    ExperimentRequest cancel;
    cancel.id = 9;
    cancel.kind = RequestKind::Cancel;
    cancel.target = 42;
    ASSERT_TRUE(decodeRequest(encodeRequest(cancel), decoded, error))
        << error;
    EXPECT_EQ(decoded.kind, RequestKind::Cancel);
    EXPECT_EQ(decoded.target, 42u);

    ExperimentResponse response;
    response.id = 9;
    response.status = ResponseStatus::DeadlineExceeded;
    response.error = "deadline-exceeded";
    ExperimentResponse rdecoded;
    ASSERT_TRUE(
        decodeResponse(encodeResponse(response), rdecoded, error))
        << error;
    EXPECT_EQ(rdecoded.status, ResponseStatus::DeadlineExceeded);
    response.status = ResponseStatus::Cancelled;
    ASSERT_TRUE(
        decodeResponse(encodeResponse(response), rdecoded, error));
    EXPECT_EQ(rdecoded.status, ResponseStatus::Cancelled);
}

TEST(ServiceExecute, CancelledRequestReportsStatusNotException)
{
    ExperimentEngine engine;
    CancelSource source;
    source.cancel();
    ExperimentResponse response =
        executeRequest(engine, sampleRequest(), source.token());
    EXPECT_EQ(response.status, ResponseStatus::Cancelled);
    EXPECT_TRUE(response.key.empty());

    CancelSource expired;
    expired.setDeadlineAfterMs(-1);
    response = executeRequest(engine, sampleRequest(), expired.token());
    EXPECT_EQ(response.status, ResponseStatus::DeadlineExceeded);
    EXPECT_TRUE(response.key.empty());
}

TEST(ServiceDaemonTest, CancelQueuedJobById)
{
    failpoint::ScopedSchedule off("");
    DaemonOptions options;
    options.workers = 1;
    DaemonFixture fixture(options);
    ASSERT_TRUE(fixture.started);

    // One worker: A occupies it, B must still be queued when the
    // Cancel lands. All three frames go out in one write, so they are
    // decoded (and A dispatched) strictly in order.
    ExperimentRequest a = sampleRequest();
    a.id = 1;
    ExperimentRequest b = sampleRequest();
    b.id = 2;
    b.config = "arch:3";
    ExperimentRequest cancel;
    cancel.id = 3;
    cancel.kind = RequestKind::Cancel;
    cancel.target = 2;

    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(frameRequest(a) + frameRequest(b) +
                             frameRequest(cancel)));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(3, responses));
    ExperimentResponse by_id[4];
    for (const ExperimentResponse &response : responses) {
        ASSERT_GE(response.id, 1u);
        ASSERT_LE(response.id, 3u);
        by_id[response.id] = response;
    }
    EXPECT_EQ(by_id[1].status, ResponseStatus::Ok);
    EXPECT_EQ(by_id[2].status, ResponseStatus::Cancelled);
    EXPECT_TRUE(by_id[2].key.empty());
    EXPECT_EQ(by_id[3].status, ResponseStatus::Ok); // the cancel ack
    EXPECT_EQ(fixture.daemon->counters().jobsCancelled, 1u);
    EXPECT_EQ(fixture.daemon->counters().jobsExecuted, 1u);
}

TEST(ServiceDaemonTest, CancelUnknownTargetIsAnError)
{
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    ServiceClient client(clientFor(fixture));
    ExperimentRequest cancel;
    cancel.id = 1;
    cancel.kind = RequestKind::Cancel;
    cancel.target = 777;
    ExperimentResponse response;
    std::string error;
    ASSERT_TRUE(client.call(cancel, response, error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::Error);
    EXPECT_NE(response.error.find("no such job"), std::string::npos);
}

TEST(ServiceDaemonTest, QueuedJobExpiresViaWatchdog)
{
    failpoint::ScopedSchedule off("");
    DaemonOptions options;
    options.workers = 1;
    DaemonFixture fixture(options);
    ASSERT_TRUE(fixture.started);

    // A (no deadline) occupies the single worker; B's 1ms deadline
    // expires while it is still queued. Whether the watchdog or the
    // dispatch-time backstop catches it, B must answer
    // DeadlineExceeded without ever executing.
    ExperimentRequest a = sampleRequest();
    a.id = 1;
    ExperimentRequest b = sampleRequest();
    b.id = 2;
    b.config = "arch:4";
    b.deadlineMs = 1;

    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(frameRequest(a) + frameRequest(b)));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(2, responses));
    ExperimentResponse by_id[3];
    for (const ExperimentResponse &response : responses) {
        ASSERT_GE(response.id, 1u);
        ASSERT_LE(response.id, 2u);
        by_id[response.id] = response;
    }
    EXPECT_EQ(by_id[1].status, ResponseStatus::Ok);
    EXPECT_EQ(by_id[2].status, ResponseStatus::DeadlineExceeded);
    EXPECT_TRUE(by_id[2].key.empty());
    DaemonCounters counters = fixture.daemon->counters();
    EXPECT_EQ(counters.jobsDeadlineExpired, 1u);
    EXPECT_EQ(counters.jobsExecuted, 1u);
    EXPECT_EQ(counters.responsesDropped, 0u);
}

TEST(ServiceDaemonTest, DispatchExpiryFailpointForcesDeadline)
{
    // Deterministic deadline coverage with no timing at all: the
    // "svc.cancel.dispatch" failpoint expires every deadline-carrying
    // job at dispatch, so it must answer DeadlineExceeded and the
    // engine must never run it.
    failpoint::ScopedSchedule sched("svc.cancel.dispatch=always");
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    ServiceClient client(clientFor(fixture));
    ExperimentRequest request = sampleRequest();
    request.deadlineMs = 600'000; // far future; the failpoint decides
    ExperimentResponse response;
    std::string error;
    ASSERT_TRUE(client.call(request, response, error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::DeadlineExceeded);
    EXPECT_TRUE(response.key.empty());
    EXPECT_EQ(fixture.daemon->counters().jobsDeadlineExpired, 1u);
    EXPECT_EQ(fixture.engine.counters().runsExecuted, 0u);
}

TEST(ServiceDaemonTest, MidRunDeadlineUnwindsCooperatively)
{
    failpoint::ScopedSchedule off("");
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    // A genuinely slow run (sequential detailed reference, scaled up)
    // with a deadline it cannot meet: the executor's batch-boundary
    // polls must trip it mid-run and unwind without a result.
    ExperimentRequest request = sampleRequest();
    request.suite.referenceInstructions = 3'000'000;
    request.deadlineMs = 30;
    ServiceClient client(clientFor(fixture));
    ExperimentResponse response;
    std::string error;
    ASSERT_TRUE(client.call(request, response, error)) << error;
    EXPECT_EQ(response.status, ResponseStatus::DeadlineExceeded);
    EXPECT_TRUE(response.key.empty());
    DaemonCounters counters = fixture.daemon->counters();
    EXPECT_EQ(counters.jobsDeadlineExpired, 1u);
    EXPECT_EQ(counters.jobsExecuted, 0u);
    // The run really started and was really cancelled (not expired in
    // the queue): the engine charged a cancelled run.
    EXPECT_GE(fixture.engine.counters().runsCancelled +
                  counters.watchdogWakeups,
              1u);
}

TEST(ServiceDaemonTest, CancelRunningJobUnwindsMidRun)
{
    failpoint::ScopedSchedule off("");
    DaemonOptions options;
    options.workers = 1;
    DaemonFixture fixture(options);
    ASSERT_TRUE(fixture.started);

    ExperimentRequest run = sampleRequest();
    run.id = 1;
    run.suite.referenceInstructions = 3'000'000;
    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(frameRequest(run)));
    ASSERT_TRUE(eventually([&] {
        return fixture.daemon->counters().jobsAccepted == 1;
    }));

    ExperimentRequest cancel;
    cancel.id = 2;
    cancel.kind = RequestKind::Cancel;
    cancel.target = 1;
    ASSERT_TRUE(conn.sendAll(frameRequest(cancel)));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(2, responses));
    ExperimentResponse by_id[3];
    for (const ExperimentResponse &response : responses) {
        ASSERT_GE(response.id, 1u);
        ASSERT_LE(response.id, 2u);
        by_id[response.id] = response;
    }
    EXPECT_EQ(by_id[2].status, ResponseStatus::Ok); // the ack
    EXPECT_EQ(by_id[1].status, ResponseStatus::Cancelled);
    EXPECT_TRUE(by_id[1].key.empty());
    DaemonCounters counters = fixture.daemon->counters();
    EXPECT_EQ(counters.jobsCancelled, 1u);
    EXPECT_EQ(counters.jobsExecuted, 0u);
    EXPECT_EQ(counters.responsesDropped, 0u);
}

TEST(ServiceDaemonTest, ShedsLowestPriorityUnderOverload)
{
    failpoint::ScopedSchedule off("");
    DaemonOptions options;
    options.workers = 1;
    DaemonFixture fixture(options);
    ASSERT_TRUE(fixture.started);

    ServiceClient client(clientFor(fixture));
    ExperimentResponse response;
    std::string error;

    // Seed the execution-time EWMA with one completed job.
    ExperimentRequest warm = sampleRequest();
    warm.id = 1;
    ASSERT_TRUE(client.call(warm, response, error)) << error;
    ASSERT_EQ(response.status, ResponseStatus::Ok);

    // Occupy the worker with a long run and stack a queue behind it,
    // then offer a 1ms-deadline job that cannot possibly be served:
    // admission must shed it (lowest priority loses; the incoming job
    // does not outrank the queued ones here) instead of queueing it.
    ExperimentRequest slow = sampleRequest();
    slow.id = 2;
    slow.suite.referenceInstructions = 3'000'000;
    slow.priority = 1;
    ExperimentRequest queued = sampleRequest();
    queued.id = 3;
    queued.config = "arch:3";
    queued.priority = 1;
    ExperimentRequest hopeless = sampleRequest();
    hopeless.id = 4;
    hopeless.config = "arch:4";
    hopeless.priority = 5;
    hopeless.deadlineMs = 1;

    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(frameRequest(slow) + frameRequest(queued) +
                             frameRequest(hopeless)));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(3, responses));
    ExperimentResponse by_id[5];
    for (const ExperimentResponse &response : responses) {
        ASSERT_GE(response.id, 2u);
        ASSERT_LE(response.id, 4u);
        by_id[response.id] = response;
    }
    EXPECT_EQ(by_id[2].status, ResponseStatus::Ok);
    EXPECT_EQ(by_id[3].status, ResponseStatus::Ok);
    EXPECT_EQ(by_id[4].status, ResponseStatus::Rejected);
    EXPECT_EQ(by_id[4].error, "shed");
    DaemonCounters counters = fixture.daemon->counters();
    EXPECT_EQ(counters.jobsShed, 1u);
    EXPECT_EQ(counters.responsesDropped, 0u);
}

TEST(ServiceDaemonTest, ShedsQueuedVictimWhenIncomingOutranksIt)
{
    failpoint::ScopedSchedule off("");
    DaemonOptions options;
    options.workers = 1;
    DaemonFixture fixture(options);
    ASSERT_TRUE(fixture.started);

    ServiceClient client(clientFor(fixture));
    ExperimentResponse response;
    std::string error;
    ExperimentRequest warm = sampleRequest();
    warm.id = 1;
    ASSERT_TRUE(client.call(warm, response, error)) << error;
    ASSERT_EQ(response.status, ResponseStatus::Ok);

    // Same overload shape, but now the deadline-carrying arrival
    // outranks the queued job: the queued low-priority job is the
    // victim and the urgent one takes its place.
    ExperimentRequest slow = sampleRequest();
    slow.id = 2;
    slow.suite.referenceInstructions = 3'000'000;
    slow.priority = 1;
    ExperimentRequest doomed = sampleRequest();
    doomed.id = 3;
    doomed.config = "arch:3";
    doomed.priority = 9;
    ExperimentRequest urgent = sampleRequest();
    urgent.id = 4;
    urgent.config = "arch:2";
    urgent.priority = 1;
    urgent.deadlineMs = 1;

    RawConn conn(fixture.socketPath);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.sendAll(frameRequest(slow) + frameRequest(doomed) +
                             frameRequest(urgent)));

    std::vector<ExperimentResponse> responses;
    ASSERT_TRUE(conn.readResponses(3, responses));
    ExperimentResponse by_id[5];
    for (const ExperimentResponse &response : responses) {
        ASSERT_GE(response.id, 2u);
        ASSERT_LE(response.id, 4u);
        by_id[response.id] = response;
    }
    EXPECT_EQ(by_id[2].status, ResponseStatus::Ok);
    EXPECT_EQ(by_id[3].status, ResponseStatus::Rejected);
    EXPECT_EQ(by_id[3].error, "shed");
    // The urgent job was admitted; with a 1ms deadline it then either
    // expired in queue/at dispatch or got cancelled mid-run — but it
    // was answered, and not with a shed.
    EXPECT_TRUE(by_id[4].status == ResponseStatus::DeadlineExceeded ||
                by_id[4].status == ResponseStatus::Ok)
        << "urgent job answered " << uint32_t(by_id[4].status);
    DaemonCounters counters = fixture.daemon->counters();
    EXPECT_EQ(counters.jobsShed, 1u);
    EXPECT_EQ(counters.responsesDropped, 0u);
}

TEST(ServiceDaemonTest, StatsReportCarriesCancellationCounters)
{
    failpoint::ScopedSchedule sched("svc.cancel.dispatch=always");
    DaemonFixture fixture;
    ASSERT_TRUE(fixture.started);

    ServiceClient client(clientFor(fixture));
    ExperimentResponse response;
    std::string error;
    ExperimentRequest request = sampleRequest();
    request.deadlineMs = 600'000;
    ASSERT_TRUE(client.call(request, response, error)) << error;
    ASSERT_EQ(response.status, ResponseStatus::DeadlineExceeded);

    ExperimentRequest stats;
    stats.id = 2;
    stats.kind = RequestKind::Stats;
    ASSERT_TRUE(client.call(stats, response, error)) << error;
    JsonReport parsed("");
    ASSERT_TRUE(parseReport(response.report, parsed));
    EXPECT_EQ(parsed.count("svc_jobs_deadline_expired"), 1u);
    EXPECT_TRUE(parsed.has("svc_jobs_cancelled"));
    EXPECT_TRUE(parsed.has("svc_jobs_shed"));
    EXPECT_TRUE(parsed.has("svc_watchdog_wakeups"));
}
