/** @file Tests for the synthetic benchmark suite. */

#include <gtest/gtest.h>

#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "workloads/builder_util.hh"
#include "workloads/suite.hh"

namespace yasim {
namespace {

SuiteConfig
tinySuite()
{
    SuiteConfig cfg;
    cfg.referenceInstructions = 300'000;
    return cfg;
}

TEST(Suite, TenBenchmarks)
{
    const auto &names = benchmarkNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names[0], "gzip");
    EXPECT_EQ(names[5], "mcf");
    for (const std::string &name : names)
        EXPECT_TRUE(isBenchmark(name));
    EXPECT_FALSE(isBenchmark("doom"));
}

TEST(Suite, Table2Holes)
{
    // The paper's N/A cells must be preserved.
    EXPECT_FALSE(hasInput("vpr-place", InputSet::Large));
    EXPECT_FALSE(hasInput("gcc", InputSet::Large));
    EXPECT_FALSE(hasInput("art", InputSet::Small));
    EXPECT_FALSE(hasInput("art", InputSet::Medium));
    EXPECT_FALSE(hasInput("mcf", InputSet::Medium));
    EXPECT_FALSE(hasInput("equake", InputSet::Small));
    EXPECT_FALSE(hasInput("perlbmk", InputSet::Large));
    EXPECT_FALSE(hasInput("bzip2", InputSet::Small));
    // And the present cells must be present.
    for (const std::string &bench : benchmarkNames()) {
        EXPECT_TRUE(hasInput(bench, InputSet::Reference)) << bench;
        EXPECT_TRUE(hasInput(bench, InputSet::Train)) << bench;
    }
    EXPECT_TRUE(hasInput("gzip", InputSet::Small));
    EXPECT_TRUE(hasInput("vortex", InputSet::Large));
}

TEST(Suite, Table2Labels)
{
    EXPECT_EQ(inputLabel("gzip", InputSet::Small), "smred.log");
    EXPECT_EQ(inputLabel("gcc", InputSet::Reference), "166.i");
    EXPECT_EQ(inputLabel("perlbmk", InputSet::Train), "scrabbl");
    EXPECT_EQ(inputLabel("gcc", InputSet::Large), "");
}

TEST(Suite, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(buildWorkload("doom", InputSet::Reference, tinySuite()),
                 "unknown benchmark");
}

TEST(Suite, MissingInputIsFatal)
{
    EXPECT_DEATH(buildWorkload("gcc", InputSet::Large, tinySuite()),
                 "N/A");
}

/** Every (benchmark, input) builds, validates, and halts. */
class SuiteBuildSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteBuildSweep, EveryInputRunsToCompletion)
{
    const std::string bench = GetParam();
    uint64_t prev_len = 0;
    for (InputSet input : availableInputs(bench)) {
        Workload w = buildWorkload(bench, input, tinySuite());
        EXPECT_EQ(w.benchmark, bench);
        EXPECT_FALSE(w.label.empty());
        FunctionalSim fsim(w.program);
        uint64_t len = fsim.fastForward(100'000'000);
        EXPECT_TRUE(fsim.halted())
            << bench << "/" << inputSetName(input) << " did not halt";
        EXPECT_GT(len, 1000u) << bench << "/" << inputSetName(input);
        // The input ladder must be non-decreasing in dynamic length
        // (small < ... < reference), with generous slack for rounding.
        EXPECT_GT(len, prev_len / 2)
            << bench << "/" << inputSetName(input);
        prev_len = len;
    }
    // Reference must be within 3x of the suite target.
    Workload ref = buildWorkload(bench, InputSet::Reference, tinySuite());
    FunctionalSim fsim(ref.program);
    uint64_t ref_len = fsim.fastForward(100'000'000);
    EXPECT_GT(ref_len, tinySuite().referenceInstructions / 3) << bench;
    EXPECT_LT(ref_len, tinySuite().referenceInstructions * 3) << bench;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteBuildSweep,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(Suite, InputSetsShareStaticShape)
{
    // Profiles are compared across input sets, so the basic-block
    // structure must be identical for every input of a benchmark.
    for (const std::string &bench : benchmarkNames()) {
        size_t ref_blocks =
            buildWorkload(bench, InputSet::Reference, tinySuite())
                .program.numBlocks();
        for (InputSet input : availableInputs(bench)) {
            EXPECT_EQ(buildWorkload(bench, input, tinySuite())
                          .program.numBlocks(),
                      ref_blocks)
                << bench << "/" << inputSetName(input);
        }
    }
}

TEST(Suite, DeterministicForFixedSeed)
{
    Workload a = buildWorkload("gzip", InputSet::Reference, tinySuite());
    Workload b = buildWorkload("gzip", InputSet::Reference, tinySuite());
    ASSERT_EQ(a.program.size(), b.program.size());
    FunctionalSim sa(a.program), sb(b.program);
    EXPECT_EQ(sa.fastForward(~0ULL), sb.fastForward(~0ULL));
}

TEST(Suite, McfReferenceIsMemoryBoundUnlikeReduced)
{
    // The paper's key reduced-input finding: reference mcf spends most
    // of its cycles in main memory; the small input is cache-resident.
    SuiteConfig suite;
    suite.referenceInstructions = 400'000;
    SimConfig cfg = architecturalConfig(2);

    auto cpi_of = [&](InputSet input) {
        Workload w = buildWorkload("mcf", input, suite);
        FunctionalSim fsim(w.program);
        OooCore core(cfg);
        core.run(fsim, ~0ULL);
        return core.snapshot().cpi();
    };
    double ref_cpi = cpi_of(InputSet::Reference);
    double small_cpi = cpi_of(InputSet::Small);
    EXPECT_GT(ref_cpi, small_cpi * 3.0);
}

TEST(Suite, McfMemStallFractionSeparatesInputs)
{
    // The paper's exact wording: "the percentage of cycles due to
    // cache misses serviced by main memory is much larger for the
    // reference input set than in any of the reduced input sets".
    SuiteConfig suite;
    suite.referenceInstructions = 400'000;
    SimConfig cfg = architecturalConfig(2);
    auto stall_of = [&](InputSet input) {
        Workload w = buildWorkload("mcf", input, suite);
        FunctionalSim fsim(w.program);
        OooCore core(cfg);
        core.run(fsim, ~0ULL);
        return core.snapshot().memStallFraction();
    };
    double ref = stall_of(InputSet::Reference);
    double small = stall_of(InputSet::Small);
    EXPECT_GT(ref, 0.5);
    // The small input's residual stall share is compulsory-miss
    // cold start (its run is tiny); the reference's must dwarf it.
    EXPECT_LT(small, ref * 0.6);
}

TEST(Suite, GccHasTrivialOperations)
{
    // gcc's constant-folding pass feeds the TC enhancement.
    SuiteConfig suite;
    suite.referenceInstructions = 200'000;
    Workload w = buildWorkload("gcc", InputSet::Reference, suite);
    FunctionalSim fsim(w.program);
    ExecRecord rec;
    uint64_t trivial = 0, total = 0;
    while (fsim.step(rec) && total < 200'000) {
        ++total;
        if (rec.trivial)
            ++trivial;
    }
    EXPECT_GT(trivial, total / 50);
}

TEST(Suite, PerlbmkBranchesAreHard)
{
    SuiteConfig suite;
    suite.referenceInstructions = 300'000;
    SimConfig cfg = architecturalConfig(2);
    auto accuracy_of = [&](const std::string &bench) {
        Workload w = buildWorkload(bench, InputSet::Reference, suite);
        FunctionalSim fsim(w.program);
        OooCore core(cfg);
        core.run(fsim, ~0ULL);
        return core.snapshot().branchAccuracy();
    };
    // The interpreter's dispatch defeats the predictor; the FP codes
    // barely miss at all.
    EXPECT_LT(accuracy_of("perlbmk"), 0.92);
    EXPECT_GT(accuracy_of("art"), 0.99);
}

TEST(BuilderUtil, FloorPow2)
{
    EXPECT_EQ(floorPow2(1), 1u);
    EXPECT_EQ(floorPow2(2), 2u);
    EXPECT_EQ(floorPow2(3), 2u);
    EXPECT_EQ(floorPow2(1023), 512u);
    EXPECT_EQ(floorPow2(1024), 1024u);
}

TEST(BuilderUtil, TripsForNeverZero)
{
    EXPECT_EQ(tripsFor(0, 10), 1u);
    EXPECT_EQ(tripsFor(100, 10), 10u);
    EXPECT_EQ(tripsFor(5, 10), 1u);
}

TEST(BuilderUtil, CountedLoopShape)
{
    ProgramBuilder b("t");
    CountedLoop loop = beginCountedLoop(b, 1, 2, 7);
    b.addi(3, 3, 2);
    endCountedLoop(b, loop);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    sim.fastForward(~0ULL);
    EXPECT_EQ(sim.intReg(3), 14);
}

TEST(BuilderUtil, LcgAdvancesAndMixes)
{
    ProgramBuilder b("t");
    Lcg lcg{1, 2, 3};
    lcg.prepare(b, 42);
    for (int i = 0; i < 8; ++i)
        lcg.step(b);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    sim.fastForward(~0ULL);
    EXPECT_NE(sim.intReg(1), 0);
    // Low bits must not be stuck in a tiny cycle: collect parity of
    // eight successive values via separate programs.
    ProgramBuilder b2("t2");
    Lcg lcg2{1, 2, 3};
    lcg2.prepare(b2, 42);
    int64_t expected_parities = 0;
    (void)expected_parities;
    lcg2.step(b2);
    b2.andi(4, 1, 7);
    b2.halt();
    Program prog_sim22 = b2.finish();
    FunctionalSim sim2(prog_sim22);
    sim2.fastForward(~0ULL);
    EXPECT_GE(sim2.intReg(4), 0);
    EXPECT_LE(sim2.intReg(4), 7);
}

} // namespace
} // namespace yasim
