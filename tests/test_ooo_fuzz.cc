/**
 * @file
 * Property-based fuzzing of the cycle-level core: randomly generated
 * (but always-terminating) programs run on randomly chosen machine
 * configurations, checking the invariants any timing model must hold:
 *
 *  - the core commits exactly what the functional simulator executes
 *  - IPC never exceeds the commit width
 *  - cycles are bounded above by a per-instruction worst case
 *  - timing is deterministic for identical runs
 *  - enabling TC never slows the machine; raising memory latency
 *    never speeds it up
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sim/config.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "sim/ooo_core.hh"
#include "support/rng.hh"

namespace yasim {
namespace {

/** Deterministic random program: counted loops over random bodies. */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz" + std::to_string(seed));
    b.movi(29, static_cast<int64_t>(heapBase)); // data base
    b.movi(28, 0x9e3779b1);                     // constant

    int segments = 2 + static_cast<int>(rng.nextBelow(4));
    for (int s = 0; s < segments; ++s) {
        uint64_t trips = 50 + rng.nextBelow(400);
        Label top = b.newLabel();
        b.movi(26, 0);
        b.movi(27, static_cast<int64_t>(trips));
        b.bind(top);

        int body = 3 + static_cast<int>(rng.nextBelow(8));
        for (int i = 0; i < body; ++i) {
            int rd = 3 + static_cast<int>(rng.nextBelow(18));
            int rs1 = 3 + static_cast<int>(rng.nextBelow(18));
            int rs2 = 3 + static_cast<int>(rng.nextBelow(18));
            switch (rng.nextBelow(12)) {
              case 0:
                b.add(rd, rs1, rs2);
                break;
              case 1:
                b.sub(rd, rs1, rs2);
                break;
              case 2:
                b.mul(rd, rs1, 28);
                break;
              case 3:
                b.div(rd, rs1, 28);
                break;
              case 4:
                b.xor_(rd, rs1, rs2);
                break;
              case 5: // load from a masked heap address
                b.andi(25, rs1, 0xFFFF8);
                b.add(25, 25, 29);
                b.ld(rd, 25, 0);
                break;
              case 6: // store to a masked heap address
                b.andi(25, rs1, 0xFFFF8);
                b.add(25, 25, 29);
                b.st(25, rs2, 0);
                break;
              case 7: // FP chain through the int value
                b.fcvt(1, rs1);
                b.fadd(2, 2, 1);
                break;
              case 8:
                b.fmul(3, 2, 1);
                break;
              case 9: { // forward skip (data-dependent branch)
                Label skip = b.newLabel();
                b.andi(24, rs1, 3);
                b.bne(24, 0, skip);
                b.addi(rd, rd, 1);
                b.bind(skip);
                break;
              }
              case 10:
                b.shri(rd, rs1, 5);
                break;
              default:
                b.slt(rd, rs1, rs2);
                break;
            }
        }
        b.addi(26, 26, 1);
        b.blt(26, 27, top);
    }
    b.halt();
    return b.finish();
}

/** Random PB-corner configuration. */
SimConfig
randomConfig(uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> levels(numPbFactors());
    for (int &l : levels)
        l = rng.nextBool() ? 1 : -1;
    return applyPbRow(levels, "fuzz-cfg" + std::to_string(seed));
}

class OooFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OooFuzz, TimingInvariantsHold)
{
    const uint64_t seed = GetParam();
    Program program = randomProgram(seed);

    // Functional ground truth.
    uint64_t functional_count;
    {
        FunctionalSim fsim(program);
        functional_count = fsim.fastForward(~0ULL);
        ASSERT_TRUE(fsim.halted());
    }

    for (int c = 0; c < 3; ++c) {
        SimConfig cfg = randomConfig(seed * 31 + static_cast<uint64_t>(c));
        FunctionalSim fsim(program);
        OooCore core(cfg);
        uint64_t committed = core.run(fsim, ~0ULL);
        SimStats stats = core.snapshot();

        // Commit completeness.
        EXPECT_EQ(committed, functional_count);
        EXPECT_EQ(stats.instructions, functional_count);

        // Bandwidth bound.
        EXPECT_GE(stats.cycles * cfg.core.commitWidth,
                  stats.instructions);

        // Worst-case upper bound: every instruction fully serialized
        // through the slowest latency in the machine.
        uint64_t worst = cfg.core.intDivLatency + cfg.core.fpDivLatency +
                         cfg.mem.memLatencyFirst +
                         cfg.mem.memLatencyNext * 64 +
                         cfg.mem.tlbMissLatency + cfg.core.frontendDepth +
                         cfg.core.mispredictPenalty + 16;
        EXPECT_LE(stats.cycles, stats.instructions * worst)
            << "config " << cfg.name;

        // Determinism.
        FunctionalSim fsim2(program);
        OooCore core2(cfg);
        core2.run(fsim2, ~0ULL);
        EXPECT_EQ(core2.snapshot().cycles, stats.cycles);
    }
}

TEST_P(OooFuzz, EnhancementsAndLatenciesAreMonotone)
{
    const uint64_t seed = GetParam();
    Program program = randomProgram(seed);
    SimConfig base = architecturalConfig(1);

    auto cycles_for = [&](const SimConfig &cfg) {
        FunctionalSim fsim(program);
        OooCore core(cfg);
        core.run(fsim, ~0ULL);
        return core.snapshot().cycles;
    };

    uint64_t baseline = cycles_for(base);

    SimConfig tc = base;
    tc.core.trivialComputation = true;
    // TC moves trivial mul/div onto the ALU pool; the latency win can
    // be partially offset by ALU contention, so allow a tiny epsilon.
    EXPECT_LE(cycles_for(tc),
              baseline + baseline / 50);

    SimConfig slow_mem = base;
    slow_mem.mem.memLatencyFirst = base.mem.memLatencyFirst * 3;
    EXPECT_GE(cycles_for(slow_mem), baseline);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OooFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace yasim
