/** @file Tests for the chi-squared machinery. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/chi2.hh"

namespace yasim {
namespace {

TEST(Gamma, RegularizedPBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedGammaP(1.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaP(1.0, 1e9), 1.0, 1e-12);
}

TEST(Gamma, KnownValues)
{
    // P(1, x) = 1 - exp(-x).
    EXPECT_NEAR(regularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
    EXPECT_NEAR(regularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
    // P + Q = 1.
    EXPECT_NEAR(regularizedGammaP(3.5, 2.0) + regularizedGammaQ(3.5, 2.0),
                1.0, 1e-12);
}

TEST(Chi2, CdfKnownQuantiles)
{
    // chi2(k=1): CDF(3.841) ~= 0.95; chi2(k=10): CDF(18.307) ~= 0.95.
    EXPECT_NEAR(chiSquaredCdf(3.841, 1), 0.95, 1e-3);
    EXPECT_NEAR(chiSquaredCdf(18.307, 10), 0.95, 1e-3);
}

TEST(Chi2, CriticalValuesMatchTables)
{
    EXPECT_NEAR(chiSquaredCritical(1, 0.95), 3.841, 1e-2);
    EXPECT_NEAR(chiSquaredCritical(3, 0.95), 7.815, 1e-2);
    EXPECT_NEAR(chiSquaredCritical(10, 0.95), 18.307, 1e-2);
    EXPECT_NEAR(chiSquaredCritical(100, 0.95), 124.342, 1e-1);
}

TEST(Chi2, IdenticalDistributionsSimilar)
{
    std::vector<double> counts = {100, 200, 300, 400};
    Chi2Result res = chiSquaredCompare(counts, counts);
    EXPECT_DOUBLE_EQ(res.statistic, 0.0);
    EXPECT_TRUE(res.similar);
}

TEST(Chi2, ScaledDistributionsSimilar)
{
    // The observed counts are rescaled to the expected total, so a
    // uniformly scaled distribution is a perfect match.
    std::vector<double> obs = {10, 20, 30, 40};
    std::vector<double> exp = {100, 200, 300, 400};
    Chi2Result res = chiSquaredCompare(obs, exp);
    EXPECT_NEAR(res.statistic, 0.0, 1e-9);
    EXPECT_TRUE(res.similar);
}

TEST(Chi2, VeryDifferentDistributionsDissimilar)
{
    std::vector<double> obs = {1000, 0, 0, 0};
    std::vector<double> exp = {250, 250, 250, 250};
    Chi2Result res = chiSquaredCompare(obs, exp);
    EXPECT_GT(res.statistic, res.critical);
    EXPECT_FALSE(res.similar);
}

TEST(Chi2, ZeroCellsSkipped)
{
    std::vector<double> obs = {100, 0, 200};
    std::vector<double> exp = {100, 0, 200};
    Chi2Result res = chiSquaredCompare(obs, exp);
    EXPECT_TRUE(res.similar);
    EXPECT_DOUBLE_EQ(res.dof, 1.0); // two live cells - 1
}

TEST(Chi2, ExpectedZeroObservedNonzeroPenalized)
{
    std::vector<double> obs = {100, 100};
    std::vector<double> exp = {200, 0};
    Chi2Result res = chiSquaredCompare(obs, exp);
    EXPECT_GT(res.statistic, 0.0);
}

TEST(Chi2, EmptyDistributions)
{
    std::vector<double> zeros = {0, 0, 0};
    Chi2Result res = chiSquaredCompare(zeros, zeros);
    EXPECT_TRUE(res.similar);
}

/** Property: statistic grows as the distributions diverge. */
class Chi2DivergenceSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(Chi2DivergenceSweep, MonotoneInPerturbation)
{
    double shift = GetParam();
    std::vector<double> exp = {500, 500, 500, 500};
    std::vector<double> obs = {500 + shift, 500 - shift, 500 + shift,
                               500 - shift};
    std::vector<double> obs2 = {500 + 2 * shift, 500 - 2 * shift,
                                500 + 2 * shift, 500 - 2 * shift};
    double d1 = chiSquaredCompare(obs, exp).statistic;
    double d2 = chiSquaredCompare(obs2, exp).statistic;
    EXPECT_LT(d1, d2);
}

INSTANTIATE_TEST_SUITE_P(Shifts, Chi2DivergenceSweep,
                         ::testing::Values(10.0, 50.0, 100.0, 200.0));

} // namespace
} // namespace yasim
