/** @file Tests for the support layer: formatting, RNG, tables. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/codec.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/table.hh"

namespace yasim {
namespace {

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 42, "abc"), "x=42 y=abc");
    EXPECT_EQ(csprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(Csprintf, HandlesLongStrings)
{
    std::string long_arg(10000, 'z');
    std::string out = csprintf("<%s>", long_arg.c_str());
    EXPECT_EQ(out.size(), long_arg.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(99);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(5);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.nextBool(0.3))
            ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(SplitMix, AdvancesState)
{
    uint64_t s = 0;
    uint64_t a = splitMix64(s);
    uint64_t b = splitMix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 0u);
}

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Right-aligned numeric column: " 1" has leading space.
    EXPECT_NE(out.find(" 1\n"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumberFormatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
    EXPECT_EQ(Table::count(1234567), "1,234,567");
    EXPECT_EQ(Table::count(12), "12");
    EXPECT_EQ(Table::count(0), "0");
}

TEST(Parallel, MapPreservesOrder)
{
    auto out = parallelMap<int>(
        32, [](size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[static_cast<size_t>(i)], i * 3);
}

TEST(Parallel, WorkersAtLeastOne)
{
    EXPECT_GE(parallelWorkers(), 1u);
}

TEST(Parallel, EmptyInput)
{
    auto out = parallelMap<int>(0, [](size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(Table, CountsRowsIgnoringRules)
{
    Table t("demo");
    t.setHeader({"a"});
    t.addRow({"x"});
    t.addRule();
    t.addRow({"y"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Codec, VarintRoundTripsBoundaryValues)
{
    const uint64_t values[] = {0,
                               1,
                               127,
                               128,
                               16383,
                               16384,
                               (1ULL << 32) - 1,
                               1ULL << 32,
                               ~0ULL - 1,
                               ~0ULL};
    for (uint64_t v : values) {
        std::string bytes;
        putVarint(bytes, v);
        EXPECT_LE(bytes.size(), 10u);
        size_t at = 0;
        uint64_t back = 1; // poison
        ASSERT_TRUE(getVarint(bytes, at, back)) << v;
        EXPECT_EQ(back, v);
        EXPECT_EQ(at, bytes.size()) << v;
    }
}

TEST(Codec, VarintRejectsTruncationAndOverlongEncodings)
{
    std::string bytes;
    putVarint(bytes, ~0ULL);
    ASSERT_EQ(bytes.size(), 10u);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        size_t at = 0;
        uint64_t v = 0;
        EXPECT_FALSE(
            getVarint(std::string_view(bytes).substr(0, cut), at, v))
            << cut;
    }
    // An 11-byte encoding (10 continuation bytes) is never canonical.
    std::string overlong(10, char(0x80));
    overlong.push_back(0x01);
    size_t at = 0;
    uint64_t v = 0;
    EXPECT_FALSE(getVarint(overlong, at, v));
    // Nor is a 10th byte carrying bits past 2^64.
    std::string toobig(9, char(0x80));
    toobig.push_back(0x02);
    at = 0;
    EXPECT_FALSE(getVarint(toobig, at, v));
}

TEST(Codec, ZigzagRoundTripsAndKeepsSmallMagnitudesSmall)
{
    const int64_t values[] = {0,  -1, 1,  -2, 2, INT64_MAX,
                              INT64_MIN, 123456789, -123456789};
    for (int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(Codec, RleRoundTripsRunsSinglesAndRandomStrings)
{
    Rng rng(7);
    std::vector<std::string> inputs = {
        "", "a", "ab", "aa", "aaa", std::string(100000, 'x'),
        "aabbaabb", std::string(257, 'z') + "q" + std::string(2, 'z')};
    for (int i = 0; i < 20; ++i) {
        std::string s;
        for (int j = 0; j < 500; ++j)
            s.append(rng.nextBelow(9) + 1,
                     static_cast<char>(rng.nextBelow(4)));
        inputs.push_back(std::move(s));
    }
    for (const std::string &in : inputs) {
        std::string enc, dec;
        rleEncode(in, enc);
        // Worst case (alternating pairs) expands 3 bytes per 2 input.
        EXPECT_LE(enc.size(), in.size() + in.size() / 2 + 2);
        ASSERT_TRUE(rleDecode(enc, dec, in.size()));
        EXPECT_EQ(dec, in);
    }
}

TEST(Codec, RleDecodeEnforcesTheOutputCapAndRejectsTruncation)
{
    std::string enc, dec;
    rleEncode(std::string(1000, 'r'), enc);
    EXPECT_FALSE(rleDecode(enc, dec, 999));
    dec.clear();
    EXPECT_TRUE(rleDecode(enc, dec, 1000));
    EXPECT_EQ(dec.size(), 1000u);
    // A run header whose repeat varint is cut off is malformed.
    std::string truncated("rr");
    dec.clear();
    EXPECT_FALSE(rleDecode(truncated, dec, 1000));
    // A hostile repeat count must be capped, not allocated.
    std::string hostile("rr");
    putVarint(hostile, ~0ULL - 2);
    dec.clear();
    EXPECT_FALSE(rleDecode(hostile, dec, 1 << 20));
}

} // namespace
} // namespace yasim
