/** @file Tests for the work-stealing thread pool and parallelMap. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/parallel.hh"
#include "support/thread_pool.hh"

namespace yasim {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(3);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ConcurrencyIsBoundedByParticipants)
{
    // 3 worker threads + the calling thread = at most 4 concurrent
    // tasks, however many are submitted.
    ThreadPool pool(3);
    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    pool.parallelFor(64, [&](size_t) {
        int now = in_flight.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        in_flight.fetch_sub(1);
    });
    EXPECT_LE(peak.load(), 4);
    EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPool, CallerParticipates)
{
    ThreadPool pool(2);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> caller_ran{0};
    pool.parallelFor(256, [&](size_t) {
        if (std::this_thread::get_id() == caller)
            caller_ran.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    EXPECT_GT(caller_ran.load(), 0);
    EXPECT_GT(pool.stats().callerTasks, 0u);
}

TEST(ThreadPool, NestedBatchesRunInline)
{
    ThreadPool pool(3);
    std::atomic<uint64_t> total{0};
    pool.parallelFor(8, [&](size_t) {
        // A nested batch must not deadlock; it runs serially inline.
        pool.parallelFor(10, [&](size_t j) { total.fetch_add(j); });
    });
    EXPECT_EQ(total.load(), 8u * 45u);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    std::vector<int> order;
    pool.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i)); // safe: inline = serial
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, FirstExceptionIsRethrown)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must survive a throwing batch.
    std::atomic<int> ran{0};
    pool.parallelFor(10, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, StatsCountBatchesAndTasks)
{
    ThreadPool pool(2);
    pool.parallelFor(50, [](size_t) {});
    pool.parallelFor(30, [](size_t) {});
    ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.tasks, 80u);
}

TEST(ParallelMap, ResultsAreInIndexOrder)
{
    std::vector<uint64_t> got = parallelMap<uint64_t>(
        500, [](size_t i) { return uint64_t(i) * uint64_t(i); });
    ASSERT_EQ(got.size(), 500u);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], uint64_t(i) * uint64_t(i));
}

TEST(ParallelMap, EmptyAndSingleton)
{
    EXPECT_TRUE(parallelMap<int>(0, [](size_t) { return 1; }).empty());
    EXPECT_EQ(parallelMap<int>(1, [](size_t) { return 7; }),
              (std::vector<int>{7}));
}

TEST(ParallelWorkers, AlwaysAtLeastOne)
{
    EXPECT_GE(parallelWorkers(), 1u);
}

} // namespace
} // namespace yasim
