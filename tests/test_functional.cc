/** @file Tests for the functional simulator, memory, and TC detection. */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "sim/trivial.hh"

namespace yasim {
namespace {

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(heapBase), 0);
    EXPECT_EQ(mem.read(heapBase + 0x123450), 0);
}

TEST(SparseMemory, ReadBack)
{
    SparseMemory mem;
    mem.write(heapBase, 42);
    mem.write(heapBase + 8, -7);
    EXPECT_EQ(mem.read(heapBase), 42);
    EXPECT_EQ(mem.read(heapBase + 8), -7);
}

TEST(SparseMemory, CrossPageAccesses)
{
    SparseMemory mem;
    const uint64_t far_apart[] = {0x0, 0x10000, 0x20000000, 0x7fff0000};
    for (uint64_t a : far_apart)
        mem.write(a, static_cast<int64_t>(a + 1));
    for (uint64_t a : far_apart)
        EXPECT_EQ(mem.read(a), static_cast<int64_t>(a + 1));
    EXPECT_GE(mem.pagesTouched(), 4u);
}

TEST(SparseMemory, DoubleRoundTrip)
{
    SparseMemory mem;
    mem.writeDouble(heapBase, 3.14159);
    EXPECT_DOUBLE_EQ(mem.readDouble(heapBase), 3.14159);
}

TEST(SparseMemory, ClearForgets)
{
    SparseMemory mem;
    mem.write(heapBase, 1);
    mem.clear();
    EXPECT_EQ(mem.read(heapBase), 0);
}

TEST(Functional, ArithmeticSemantics)
{
    ProgramBuilder b("t");
    b.movi(1, 6);
    b.movi(2, 7);
    b.mul(3, 1, 2);   // 42
    b.add(4, 3, 1);   // 48
    b.sub(5, 4, 2);   // 41
    b.div(6, 3, 2);   // 6
    b.rem(7, 3, 1);   // 0
    b.xor_(8, 1, 2);  // 1
    b.shli(9, 1, 2);  // 24
    b.slt(10, 1, 2);  // 1
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    ExecRecord rec;
    while (sim.step(rec)) {
    }
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.intReg(3), 42);
    EXPECT_EQ(sim.intReg(4), 48);
    EXPECT_EQ(sim.intReg(5), 41);
    EXPECT_EQ(sim.intReg(6), 6);
    EXPECT_EQ(sim.intReg(7), 0);
    EXPECT_EQ(sim.intReg(8), 1);
    EXPECT_EQ(sim.intReg(9), 24);
    EXPECT_EQ(sim.intReg(10), 1);
}

TEST(Functional, RegisterZeroIsHardwired)
{
    ProgramBuilder b("t");
    b.movi(0, 99); // write to r0 must be discarded
    b.add(1, 0, 0);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    sim.fastForward(10);
    EXPECT_EQ(sim.intReg(0), 0);
    EXPECT_EQ(sim.intReg(1), 0);
}

TEST(Functional, DivisionByZeroYieldsZero)
{
    ProgramBuilder b("t");
    b.movi(1, 5);
    b.div(2, 1, 0);
    b.rem(3, 1, 0);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    sim.fastForward(10);
    EXPECT_EQ(sim.intReg(2), 0);
    EXPECT_EQ(sim.intReg(3), 0);
}

TEST(Functional, LoadStoreRoundTrip)
{
    ProgramBuilder b("t");
    b.movi(1, static_cast<int64_t>(heapBase));
    b.movi(2, 1234);
    b.st(1, 2, 16);
    b.ld(3, 1, 16);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    ExecRecord rec;
    sim.step(rec);
    sim.step(rec);
    sim.step(rec); // store
    EXPECT_EQ(rec.memAddr, heapBase + 16);
    sim.step(rec); // load
    EXPECT_EQ(rec.memAddr, heapBase + 16);
    EXPECT_TRUE(rec.inst->isLoad());
    sim.step(rec);
    EXPECT_EQ(sim.intReg(3), 1234);
}

TEST(Functional, FpPipeline)
{
    ProgramBuilder b("t");
    b.movi(1, 3);
    b.movi(2, 4);
    b.fcvt(1, 1); // f1 = 3.0
    b.fcvt(2, 2); // f2 = 4.0
    b.fmul(3, 1, 2);
    b.fadd(4, 3, 1);
    b.fdiv(5, 4, 2);
    b.movi(3, static_cast<int64_t>(heapBase));
    b.fst(3, 5, 0);
    b.fld(6, 3, 0);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    sim.fastForward(100);
    EXPECT_DOUBLE_EQ(sim.fpReg(3), 12.0);
    EXPECT_DOUBLE_EQ(sim.fpReg(4), 15.0);
    EXPECT_DOUBLE_EQ(sim.fpReg(5), 3.75);
    EXPECT_DOUBLE_EQ(sim.fpReg(6), 3.75);
}

TEST(Functional, BranchTakenAndNotTaken)
{
    ProgramBuilder b("t");
    Label skip = b.newLabel();
    Label end = b.newLabel();
    b.movi(1, 1);
    b.beq(1, 0, skip); // not taken
    b.movi(2, 10);
    b.jmp(end); // taken
    b.bind(skip);
    b.movi(2, 20);
    b.bind(end);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    ExecRecord rec;
    sim.step(rec);
    sim.step(rec);
    EXPECT_FALSE(rec.taken);
    EXPECT_EQ(rec.nextPc, 2u);
    sim.step(rec); // movi 10
    sim.step(rec); // jmp
    EXPECT_TRUE(rec.taken);
    sim.fastForward(10);
    EXPECT_EQ(sim.intReg(2), 10);
}

TEST(Functional, LoopExecutesExactTripCount)
{
    ProgramBuilder b("t");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, 100);
    b.bind(top);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    uint64_t n = sim.fastForward(~0ULL);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.intReg(1), 100);
    // 2 setup + 100 * 2 loop body + 1 halt.
    EXPECT_EQ(n, 2 + 200 + 1u);
    EXPECT_EQ(sim.instsExecuted(), n);
}

TEST(Functional, StepAndFastForwardAgree)
{
    auto build = [] {
        ProgramBuilder b("t");
        Label top = b.newLabel();
        b.movi(1, 0);
        b.movi(2, 50);
        b.movi(3, static_cast<int64_t>(heapBase));
        b.bind(top);
        b.st(3, 1, 0);
        b.ld(4, 3, 0);
        b.add(5, 5, 4);
        b.addi(1, 1, 1);
        b.blt(1, 2, top);
        b.halt();
        return b.finish();
    };
    Program p1 = build(), p2 = build();
    FunctionalSim stepper(p1), skipper(p2);
    ExecRecord rec;
    while (stepper.step(rec)) {
    }
    skipper.fastForward(~0ULL);
    EXPECT_EQ(stepper.instsExecuted(), skipper.instsExecuted());
    for (int r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(stepper.intReg(r), skipper.intReg(r)) << "r" << r;
}

TEST(Functional, HaltStopsExecution)
{
    ProgramBuilder b("t");
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    ExecRecord rec;
    EXPECT_TRUE(sim.step(rec));
    EXPECT_TRUE(sim.halted());
    EXPECT_FALSE(sim.step(rec));
    EXPECT_EQ(sim.fastForward(10), 0u);
}

TEST(Trivial, IntegerRules)
{
    EXPECT_TRUE(isTrivialInt(Opcode::Add, 0, 5));
    EXPECT_TRUE(isTrivialInt(Opcode::Add, 5, 0));
    EXPECT_FALSE(isTrivialInt(Opcode::Add, 2, 3));
    EXPECT_TRUE(isTrivialInt(Opcode::Mul, 1, 9));
    EXPECT_TRUE(isTrivialInt(Opcode::Mul, 9, 0));
    EXPECT_FALSE(isTrivialInt(Opcode::Mul, 2, 3));
    EXPECT_TRUE(isTrivialInt(Opcode::Div, 9, 1));
    EXPECT_TRUE(isTrivialInt(Opcode::Div, 7, 7));
    EXPECT_FALSE(isTrivialInt(Opcode::Div, 7, 2));
    EXPECT_TRUE(isTrivialInt(Opcode::Sub, 4, 4));
    EXPECT_TRUE(isTrivialInt(Opcode::Xor, 3, 3));
    EXPECT_FALSE(isTrivialInt(Opcode::Slt, 0, 0)); // not a TC target
}

TEST(Trivial, FpRules)
{
    EXPECT_TRUE(isTrivialFp(Opcode::FMul, 1.0, 2.5));
    EXPECT_TRUE(isTrivialFp(Opcode::FMul, 2.5, 0.0));
    EXPECT_FALSE(isTrivialFp(Opcode::FMul, 2.0, 3.0));
    EXPECT_TRUE(isTrivialFp(Opcode::FDiv, 5.0, 1.0));
    EXPECT_TRUE(isTrivialFp(Opcode::FAdd, 0.0, 7.0));
    EXPECT_FALSE(isTrivialFp(Opcode::FSub, 1.0, 2.0));
}

TEST(Functional, TrivialFlagInRecords)
{
    ProgramBuilder b("t");
    b.movi(1, 5);
    b.movi(2, 1);
    b.mul(3, 1, 2); // x * 1: trivial
    b.mul(4, 1, 1); // 5 * 5: not trivial
    b.halt();
    Program prog_sim = b.finish();
    FunctionalSim sim(prog_sim);
    ExecRecord rec;
    sim.step(rec);
    sim.step(rec);
    sim.step(rec);
    EXPECT_TRUE(rec.trivial);
    sim.step(rec);
    EXPECT_FALSE(rec.trivial);
}

} // namespace
} // namespace yasim
