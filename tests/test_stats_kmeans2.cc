/** @file Additional k-means tests: the ladder and restart variants. */

#include <gtest/gtest.h>

#include "stats/kmeans.hh"
#include "support/rng.hh"

namespace yasim {
namespace {

std::vector<std::vector<double>>
blobs(int per_blob, int num_blobs, Rng &rng)
{
    std::vector<std::vector<double>> points;
    for (int c = 0; c < num_blobs; ++c)
        for (int i = 0; i < per_blob; ++i)
            points.push_back({c * 12.0 + rng.nextGaussian() * 0.4,
                              (c % 2) * 9.0 + rng.nextGaussian() * 0.4});
    return points;
}

TEST(KmeansLadder, FindsTrueK)
{
    Rng rng(5);
    auto points = blobs(40, 4, rng);
    KSelection sel = selectKLadder(points, 64, rng);
    EXPECT_EQ(sel.k, 4);
}

TEST(KmeansLadder, LadderCoversOneAndMax)
{
    Rng rng(6);
    auto points = blobs(10, 2, rng);
    KSelection full = selectK(points, 5, rng);
    Rng rng2(6);
    KSelection ladder = selectKLadder(points, 5, rng2);
    // Small max_k: the ladder degenerates to the full sweep.
    EXPECT_EQ(full.scores.size(), ladder.scores.size());
}

TEST(KmeansLadder, MuchCheaperThanFullSweepInCandidates)
{
    Rng rng(7);
    auto points = blobs(20, 3, rng);
    KSelection ladder = selectKLadder(points, 60, rng);
    // Full sweep would score 60 candidates; the ladder far fewer.
    EXPECT_LT(ladder.scores.size(), 30u);
    EXPECT_GE(ladder.scores.size(), 10u);
}

TEST(KmeansRestarts, NeverIncreasesDistortion)
{
    Rng rng(8);
    auto points = blobs(30, 5, rng);
    for (int k : {2, 4, 6}) {
        Rng r1(99), r2(99);
        KmeansResult single = kmeans(points, k, r1);
        KmeansResult multi = kmeansRestarts(points, k, r2, 8);
        EXPECT_LE(multi.distortion, single.distortion + 1e-9)
            << "k=" << k;
    }
}

TEST(KmeansRestarts, OneRestartEqualsPlainKmeans)
{
    Rng rng(9);
    auto points = blobs(15, 3, rng);
    Rng r1(77), r2(77);
    KmeansResult a = kmeans(points, 3, r1);
    KmeansResult b = kmeansRestarts(points, 3, r2, 1);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.distortion, b.distortion);
}

/** Restart-count sweep: deterministic and monotone non-increasing. */
class RestartSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RestartSweep, Deterministic)
{
    Rng data_rng(10);
    auto points = blobs(25, 4, data_rng);
    Rng r1(55), r2(55);
    KmeansResult a = kmeansRestarts(points, 4, r1, GetParam());
    KmeansResult b = kmeansRestarts(points, 4, r2, GetParam());
    EXPECT_EQ(a.assignment, b.assignment);
}

INSTANTIATE_TEST_SUITE_P(Counts, RestartSweep,
                         ::testing::Values(1, 3, 7));

} // namespace
} // namespace yasim
