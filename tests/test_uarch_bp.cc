/** @file Tests for the combined branch predictor and BTB. */

#include <gtest/gtest.h>

#include "support/rng.hh"
#include "uarch/branch_predictor.hh"

namespace yasim {
namespace {

BranchPredictorConfig
smallConfig()
{
    BranchPredictorConfig cfg;
    cfg.bhtEntries = 1024;
    cfg.globalHistoryBits = 8;
    cfg.btbEntries = 256;
    cfg.btbAssoc = 4;
    return cfg;
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    CombinedPredictor bp(smallConfig());
    const uint64_t pc = 0x1000, target = 0x2000;
    for (int i = 0; i < 100; ++i)
        bp.update(pc, true, true, target);
    EXPECT_GT(bp.stats().directionAccuracy(), 0.95);
    BranchPrediction pred = bp.predict(pc);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.target, target);
}

TEST(BranchPredictor, LearnsAlternatingPattern)
{
    // gshare with history must learn T/N/T/N nearly perfectly.
    CombinedPredictor bp(smallConfig());
    const uint64_t pc = 0x1000;
    int mispredicts = 0;
    for (int i = 0; i < 2000; ++i) {
        bool taken = (i % 2) == 0;
        BranchPrediction pred = bp.predict(pc);
        if (pred.taken != taken && i > 100)
            ++mispredicts;
        bp.update(pc, true, taken, 0x2000);
    }
    EXPECT_LT(mispredicts, 40);
}

TEST(BranchPredictor, RandomBranchesNearCoinFlip)
{
    CombinedPredictor bp(smallConfig());
    Rng rng(3);
    const uint64_t pc = 0x1000;
    for (int i = 0; i < 5000; ++i)
        bp.update(pc, true, rng.nextBool(), 0x2000);
    double acc = bp.stats().directionAccuracy();
    EXPECT_GT(acc, 0.35);
    EXPECT_LT(acc, 0.65);
}

TEST(BranchPredictor, BiasedBranchesBeatCoinFlip)
{
    CombinedPredictor bp(smallConfig());
    Rng rng(4);
    const uint64_t pc = 0x1000;
    for (int i = 0; i < 5000; ++i)
        bp.update(pc, true, rng.nextBool(0.9), 0x2000);
    EXPECT_GT(bp.stats().directionAccuracy(), 0.80);
}

TEST(BranchPredictor, MispredictSignal)
{
    CombinedPredictor bp(smallConfig());
    const uint64_t pc = 0x1000;
    for (int i = 0; i < 50; ++i)
        bp.update(pc, true, true, 0x2000);
    // Now a surprise not-taken must be reported as a mispredict.
    EXPECT_TRUE(bp.update(pc, true, false, 0x2000));
    // ... and a taken branch to a *new* target is a target mispredict.
    for (int i = 0; i < 50; ++i)
        bp.update(pc, true, true, 0x2000);
    EXPECT_TRUE(bp.update(pc, true, true, 0x3000));
}

TEST(BranchPredictor, UnconditionalNeedsBtb)
{
    CombinedPredictor bp(smallConfig());
    const uint64_t pc = 0x4000, target = 0x8000;
    // First encounter: BTB miss -> mispredict.
    EXPECT_TRUE(bp.update(pc, false, true, target));
    // Second encounter: BTB supplies the target.
    EXPECT_FALSE(bp.update(pc, false, true, target));
}

TEST(BranchPredictor, BtbConflictEviction)
{
    BranchPredictorConfig cfg = smallConfig();
    cfg.btbEntries = 4;
    cfg.btbAssoc = 1; // 4 direct-mapped sets
    CombinedPredictor bp(cfg);
    // Two branches mapping to the same set (pcs 16 apart with 4 sets,
    // pc >> 2 % 4 identical).
    const uint64_t pc_a = 0x1000, pc_b = 0x1000 + 4 * 16;
    bp.update(pc_a, false, true, 0x2000);
    EXPECT_FALSE(bp.update(pc_a, false, true, 0x2000));
    bp.update(pc_b, false, true, 0x3000); // evicts pc_a
    EXPECT_TRUE(bp.update(pc_a, false, true, 0x2000));
}

TEST(BranchPredictor, WarmUpdateDoesNotCount)
{
    CombinedPredictor bp(smallConfig());
    for (int i = 0; i < 100; ++i)
        bp.warmUpdate(0x1000, true, true, 0x2000);
    EXPECT_EQ(bp.stats().lookups, 0u);
    EXPECT_EQ(bp.stats().condBranches, 0u);
    // But the training must be there: first counted update predicts
    // taken with the right target.
    BranchPrediction pred = bp.predict(0x1000);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.btbHit);
}

TEST(BranchPredictor, ResetForgetsTraining)
{
    CombinedPredictor bp(smallConfig());
    for (int i = 0; i < 100; ++i)
        bp.update(0x1000, true, true, 0x2000);
    bp.reset();
    BranchPrediction pred = bp.predict(0x1000);
    EXPECT_FALSE(pred.taken); // back to weakly not-taken
    EXPECT_FALSE(pred.btbHit);
}

TEST(BranchPredictor, KindNames)
{
    EXPECT_STREQ(predictorKindName(PredictorKind::Bimodal), "bimodal");
    EXPECT_STREQ(predictorKindName(PredictorKind::Gshare), "gshare");
    EXPECT_STREQ(predictorKindName(PredictorKind::Combined), "combined");
}

TEST(BranchPredictor, GshareBeatsBimodalOnHistoryPattern)
{
    // A fixed 4-long pattern (T T N T): gshare learns it, a bimodal
    // counter saturates toward the majority and misses the N.
    auto accuracy = [](PredictorKind kind) {
        BranchPredictorConfig cfg = smallConfig();
        cfg.kind = kind;
        CombinedPredictor bp(cfg);
        const bool pattern[4] = {true, true, false, true};
        for (int i = 0; i < 4000; ++i)
            bp.update(0x1000, true, pattern[i % 4], 0x2000);
        return bp.stats().directionAccuracy();
    };
    EXPECT_GT(accuracy(PredictorKind::Gshare), 0.95);
    EXPECT_LT(accuracy(PredictorKind::Bimodal), 0.85);
    // The tournament tracks its better component.
    EXPECT_GT(accuracy(PredictorKind::Combined), 0.93);
}

TEST(BranchPredictor, BimodalBeatsGshareOnManyBiasedBranches)
{
    // Many statically-biased branches with uncorrelated histories:
    // gshare's history bits just alias, bimodal nails each PC.
    auto accuracy = [](PredictorKind kind) {
        BranchPredictorConfig cfg = smallConfig();
        cfg.kind = kind;
        cfg.bhtEntries = 256;
        CombinedPredictor bp(cfg);
        Rng rng(7);
        for (int i = 0; i < 30000; ++i) {
            uint64_t pc = 0x1000 + rng.nextBelow(64) * 4;
            bool taken = (pc >> 2) % 2 == 0; // per-PC fixed direction
            bp.update(pc, true, taken, 0x2000);
        }
        return bp.stats().directionAccuracy();
    };
    EXPECT_GT(accuracy(PredictorKind::Bimodal),
              accuracy(PredictorKind::Gshare));
}

/** Sweep: accuracy on the alternating pattern vs. table size. */
class BhtSizeSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BhtSizeSweep, LearnsDistinctBranches)
{
    BranchPredictorConfig cfg = smallConfig();
    cfg.bhtEntries = GetParam();
    CombinedPredictor bp(cfg);
    // Many distinct always-taken branches; bigger tables see less
    // aliasing, but all sizes must converge on this easy workload.
    for (int round = 0; round < 20; ++round)
        for (uint64_t pc = 0; pc < 64; ++pc)
            bp.update(0x1000 + pc * 4, true, true, 0x9000);
    EXPECT_GT(bp.stats().directionAccuracy(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BhtSizeSweep,
                         ::testing::Values(64, 256, 1024, 8192));

} // namespace
} // namespace yasim
