/** @file Tests for the full memory hierarchy and the NLP prefetcher. */

#include <gtest/gtest.h>

#include "uarch/memory_hierarchy.hh"

namespace yasim {
namespace {

MemoryConfig
tinyConfig()
{
    MemoryConfig cfg;
    cfg.l1i = CacheConfig{4, 2, 64};
    cfg.l1d = CacheConfig{4, 2, 64};
    cfg.l2 = CacheConfig{32, 4, 128};
    cfg.l1iLatency = 1;
    cfg.l1dLatency = 2;
    cfg.l2Latency = 10;
    cfg.memLatencyFirst = 100;
    cfg.memLatencyNext = 4;
    cfg.memBusBytes = 16;
    cfg.itlbEntries = 4;
    cfg.dtlbEntries = 4;
    cfg.tlbMissLatency = 25;
    return cfg;
}

TEST(MemoryHierarchy, LatencyLadder)
{
    MemoryHierarchy mem(tinyConfig());
    // Cold access: TLB miss + L1 miss + L2 miss + memory.
    // 2 + 25 + 10 + (100 + (128/16 - 1) * 4) = 165.
    EXPECT_EQ(mem.dataAccess(0x10000, false), 2 + 25 + 10 + 100 + 7 * 4);
    // Hot access: L1 hit, TLB hit.
    EXPECT_EQ(mem.dataAccess(0x10000, false), 2u);
}

TEST(MemoryHierarchy, L2HitCost)
{
    MemoryConfig cfg = tinyConfig();
    cfg.l1d = CacheConfig{4, 1, 64}; // tiny direct-mapped L1
    MemoryHierarchy mem(cfg);
    // Two blocks that conflict in L1 (4KB/64B = 64 sets -> stride 4KB)
    // but coexist in the larger L2.
    mem.dataAccess(0x10000, false);
    mem.dataAccess(0x10000 + 4096, false);
    // This one misses L1 but hits L2 (and the TLB was loaded... the
    // second page is new, so warm it first).
    mem.dataAccess(0x10000, false);
    uint32_t lat = mem.dataAccess(0x10000 + 4096, false);
    EXPECT_EQ(lat, 2 + 10u); // L1 lat + L2 hit
}

TEST(MemoryHierarchy, InstSideSeparateFromDataSide)
{
    MemoryHierarchy mem(tinyConfig());
    mem.instAccess(0x40000);
    EXPECT_EQ(mem.l1iStats().accesses, 1u);
    EXPECT_EQ(mem.l1dStats().accesses, 0u);
    mem.dataAccess(0x40000, false);
    EXPECT_EQ(mem.l1dStats().accesses, 1u);
    // Both share the L2.
    EXPECT_EQ(mem.l2Stats().accesses, 2u);
}

TEST(MemoryHierarchy, WarmDataTrainsWithoutStats)
{
    MemoryHierarchy mem(tinyConfig());
    mem.warmData(0x20000);
    EXPECT_EQ(mem.l1dStats().accesses, 0u);
    // The warmed line now hits at full latency accounting.
    EXPECT_EQ(mem.dataAccess(0x20000, false), 2u);
}

TEST(MemoryHierarchy, NextLinePrefetchHidesSequentialMisses)
{
    MemoryConfig cfg = tinyConfig();
    cfg.nextLinePrefetch = true;
    MemoryHierarchy with_pf(cfg);
    MemoryHierarchy without_pf(tinyConfig());

    // Sequential block-stride sweep: NLP should convert every second
    // miss into a hit.
    uint64_t misses_with = 0, misses_without = 0;
    for (uint64_t i = 0; i < 64; ++i) {
        with_pf.dataAccess(0x100000 + i * 64, false);
        without_pf.dataAccess(0x100000 + i * 64, false);
    }
    misses_with = with_pf.l1dStats().misses;
    misses_without = without_pf.l1dStats().misses;
    EXPECT_LT(misses_with, misses_without / 2 + 2);
    EXPECT_GT(with_pf.prefetchStats().issued, 0u);
}

TEST(MemoryHierarchy, PrefetchRedundancyTracked)
{
    MemoryConfig cfg = tinyConfig();
    cfg.nextLinePrefetch = true;
    MemoryHierarchy mem(cfg);
    // Warming misses too, so it issues a (useful) prefetch of 0x100080.
    mem.warmData(0x100040);
    // The demand miss then prefetches 0x100040, which is resident.
    mem.dataAccess(0x100000, false);
    EXPECT_EQ(mem.prefetchStats().issued, 2u);
    EXPECT_EQ(mem.prefetchStats().redundant, 1u);
}

TEST(MemoryHierarchy, ResetColdStart)
{
    MemoryHierarchy mem(tinyConfig());
    mem.dataAccess(0x10000, false);
    mem.reset();
    uint32_t lat = mem.dataAccess(0x10000, false);
    EXPECT_GT(lat, 100u); // fully cold again
}

TEST(MemoryHierarchy, ClearStatsKeepsTraining)
{
    MemoryHierarchy mem(tinyConfig());
    mem.dataAccess(0x10000, false);
    mem.clearStats();
    EXPECT_EQ(mem.l1dStats().accesses, 0u);
    EXPECT_EQ(mem.dataAccess(0x10000, false), 2u); // still resident
}

TEST(MemoryHierarchy, MemLatencyParametersBite)
{
    MemoryConfig slow = tinyConfig();
    slow.memLatencyFirst = 400;
    slow.memLatencyNext = 10;
    MemoryHierarchy fast_mem(tinyConfig());
    MemoryHierarchy slow_mem(slow);
    uint32_t fast_lat = fast_mem.dataAccess(0x30000, false);
    uint32_t slow_lat = slow_mem.dataAccess(0x30000, false);
    EXPECT_GT(slow_lat, fast_lat + 200);
}

} // namespace
} // namespace yasim
