/**
 * @file
 * Tests for checkpoint-sharded parallel detailed simulation: the shard
 * planner, the drain-boundary exactness contract against the
 * sequential reference, replay/live bit-identity, and warmed-uarch
 * summary persistence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "sim/sharded.hh"
#include "sim/trace.hh"
#include "support/failpoint.hh"
#include "workloads/suite.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

/** gzip's reference workload scaled to @p ref_insts. */
Workload
workloadOf(uint64_t ref_insts)
{
    SuiteConfig suite;
    suite.referenceInstructions = ref_insts;
    return buildWorkload("gzip", InputSet::Reference, suite);
}

/** The sequential reference statistics for @p trace. */
SimStats
sequentialStats(const std::shared_ptr<const ExecTrace> &trace,
                const SimConfig &config)
{
    TraceReplayer replayer(trace);
    OooCore core(config);
    core.run(replayer, ~0ULL);
    return core.snapshot();
}

void
expectWithin(double actual, double expected, double tol,
             const char *what)
{
    ASSERT_NE(expected, 0.0) << what;
    EXPECT_LE(std::abs(actual - expected) / std::abs(expected), tol)
        << what << ": " << actual << " vs " << expected;
}

TEST(ShardPlan, CoversRunContiguouslyOnLadderRungs)
{
    const uint64_t length = 8'000'000;
    const uint64_t spacing = ExecTrace::ladderSpacingFor(length);
    auto plan = planShards(length, 8, 0);
    ASSERT_EQ(plan.size(), 8u);
    EXPECT_EQ(plan.front().begin, 0u);
    EXPECT_EQ(plan.back().end, length);
    for (size_t k = 0; k + 1 < plan.size(); ++k)
        EXPECT_EQ(plan[k].end, plan[k + 1].begin);
    for (size_t k = 1; k < plan.size(); ++k)
        EXPECT_EQ(plan[k].begin % spacing, 0u) << k;
    // Unbounded warm-up warms every shard from the start of the run;
    // shard 0 is cold by construction.
    for (const ShardSlice &s : plan)
        EXPECT_EQ(s.warmStart, 0u);
}

TEST(ShardPlan, BoundedWarmupClampsToRunStart)
{
    auto plan = planShards(8'000'000, 8, 100'000);
    for (size_t k = 1; k < plan.size(); ++k) {
        EXPECT_EQ(plan[k].warmStart, plan[k].begin - 100'000) << k;
    }
    EXPECT_EQ(plan[0].warmStart, plan[0].begin);

    // A bound exceeding the prefix degrades to a full-prefix warm.
    auto wide = planShards(8'000'000, 8, 100'000'000);
    for (const ShardSlice &s : wide)
        EXPECT_EQ(s.warmStart, 0u);
}

TEST(ShardPlan, ShortRunsMergeCollidingShards)
{
    // 150k instructions sit on a 64Ki ladder: only two interior rungs
    // exist, so eight requested shards merge down to three.
    auto plan = planShards(150'000, 8, 0);
    ASSERT_GE(plan.size(), 2u);
    ASSERT_LE(plan.size(), 8u);
    EXPECT_EQ(plan.front().begin, 0u);
    EXPECT_EQ(plan.back().end, 150'000u);
    for (size_t k = 0; k + 1 < plan.size(); ++k)
        EXPECT_EQ(plan[k].end, plan[k + 1].begin);

    auto one = planShards(150'000, 1, 0);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].warmStart, 0u);
    EXPECT_EQ(one[0].begin, 0u);
    EXPECT_EQ(one[0].end, 150'000u);
}

TEST(Sharded, DrainBoundaryCountersMatchSequentialExactly)
{
    Workload w = workloadOf(400'000);
    auto trace = ExecTrace::record(w.program);
    SimConfig config;
    SimStats seq = sequentialStats(trace, config);

    ShardOptions opts;
    opts.shards = 4;
    ShardedRunResult sharded = runShardedReference(trace, config, opts);

    // Architectural counters are bit-exact under sharding: the same
    // dynamic instructions flow through the same warmed structures.
    EXPECT_EQ(sharded.stats.instructions, seq.instructions);
    EXPECT_EQ(sharded.stats.condBranches, seq.condBranches);
    EXPECT_EQ(sharded.stats.l1dAccesses, seq.l1dAccesses);
    EXPECT_EQ(sharded.stats.trivialOps, seq.trivialOps);
    EXPECT_EQ(sharded.detailedInsts, trace->length());

    // Each fresh core re-fetches its first I-cache block, so the
    // I-side access count can exceed sequential by at most one access
    // per extra shard.
    ASSERT_GE(sharded.stats.l1iAccesses, seq.l1iAccesses);
    EXPECT_LE(sharded.stats.l1iAccesses - seq.l1iAccesses,
              sharded.perShard.size() - 1);

    // Timing carries only the documented drain-boundary error.
    expectWithin(sharded.stats.cpi(), seq.cpi(), 0.005, "cpi");
    expectWithin(sharded.stats.l1dHitRate(), seq.l1dHitRate(), 0.005,
                 "l1d hit rate");
    expectWithin(sharded.stats.l2HitRate(), seq.l2HitRate(), 0.005,
                 "l2 hit rate");
    expectWithin(sharded.stats.branchAccuracy(), seq.branchAccuracy(),
                 0.005, "branch accuracy");
}

TEST(Sharded, SingleShardMatchesSequentialBitForBit)
{
    Workload w = workloadOf(150'000);
    auto trace = ExecTrace::record(w.program);
    SimConfig config;
    SimStats seq = sequentialStats(trace, config);

    ShardOptions one;
    one.shards = 1;
    ShardOptions exact;
    exact.shards = 8;
    exact.exact = true;

    for (const ShardOptions &opts : {one, exact}) {
        ShardedRunResult r = runShardedReference(trace, config, opts);
        ASSERT_EQ(r.perShard.size(), 1u);
        EXPECT_EQ(r.stats.instructions, seq.instructions);
        EXPECT_EQ(r.stats.cycles, seq.cycles);
        EXPECT_EQ(r.stats.condMispredicts, seq.condMispredicts);
        EXPECT_EQ(r.stats.l1iAccesses, seq.l1iAccesses);
        EXPECT_EQ(r.stats.l1iMisses, seq.l1iMisses);
        EXPECT_EQ(r.stats.l1dMisses, seq.l1dMisses);
        EXPECT_EQ(r.stats.l2Accesses, seq.l2Accesses);
        EXPECT_EQ(r.stats.l2Misses, seq.l2Misses);
        EXPECT_EQ(r.stats.memStallCycles, seq.memStallCycles);
        EXPECT_EQ(r.warmedInsts, 0u);
        EXPECT_EQ(r.checkpointInsts, 0u);
    }
}

TEST(Sharded, ReplayAndLiveShardingBitIdentical)
{
    Workload w = workloadOf(400'000);
    auto trace = ExecTrace::record(w.program);
    SimConfig config;

    ShardOptions opts;
    opts.shards = 4;
    opts.warmupInsts = 65'536;
    ShardedRunResult replay = runShardedReference(trace, config, opts);
    ShardedRunResult live =
        runShardedReference(w.program, trace->length(), config, opts);

    ASSERT_EQ(replay.perShard.size(), live.perShard.size());
    for (size_t k = 0; k < replay.perShard.size(); ++k) {
        EXPECT_EQ(replay.perShard[k].instructions,
                  live.perShard[k].instructions) << k;
        EXPECT_EQ(replay.perShard[k].cycles, live.perShard[k].cycles)
            << k;
        EXPECT_EQ(replay.perShard[k].l1dMisses,
                  live.perShard[k].l1dMisses) << k;
        EXPECT_EQ(replay.perShard[k].condMispredicts,
                  live.perShard[k].condMispredicts) << k;
    }
    EXPECT_EQ(replay.stats.cycles, live.stats.cycles);
    EXPECT_EQ(replay.stats.memStallCycles, live.stats.memStallCycles);
    EXPECT_EQ(replay.warmedInsts, live.warmedInsts);
    // Only live mode pays for the architectural entry pass.
    EXPECT_EQ(replay.checkpointInsts, 0u);
    EXPECT_GT(live.checkpointInsts, 0u);
}

TEST(Sharded, LiveProfileMatchesSequentialExactly)
{
    Workload w = workloadOf(400'000);
    auto trace = ExecTrace::record(w.program);
    SimConfig config;

    ShardOptions opts;
    opts.shards = 4;
    ShardedRunResult live =
        runShardedReference(w.program, trace->length(), config, opts);

    // The trace records the full-run weight-1.0 profile — exactly what
    // a sequential detailed pass accumulates. Stitched shard profiles
    // must reproduce it bit for bit (integral doubles, exact sums).
    ASSERT_EQ(live.bbef.size(), trace->bbef().size());
    ASSERT_EQ(live.bbv.size(), trace->bbv().size());
    for (size_t i = 0; i < live.bbef.size(); ++i) {
        EXPECT_EQ(live.bbef[i], trace->bbef()[i]) << i;
        EXPECT_EQ(live.bbv[i], trace->bbv()[i]) << i;
    }
}

TEST(Sharded, WarmSummariesPersistAndNeverChangeResults)
{
    failpoint::ScopedSchedule off("");
    fs::path dir = fs::path(::testing::TempDir()) / "yasim_shard_warm";
    fs::remove_all(dir);

    Workload w = workloadOf(400'000);
    auto trace = ExecTrace::record(w.program);
    SimConfig config;

    ShardOptions opts;
    opts.shards = 4;
    opts.warmupInsts = 65'536;
    opts.warmDir = dir.string();

    ShardedRunResult first = runShardedReference(trace, config, opts);
    EXPECT_EQ(first.warmRestores, 0u);
    EXPECT_EQ(first.warmSaves, first.perShard.size() - 1);

    // Second run warms from the persisted summaries...
    ShardedRunResult second = runShardedReference(trace, config, opts);
    EXPECT_EQ(second.warmRestores, second.perShard.size() - 1);
    EXPECT_EQ(second.warmSaves, 0u);

    // ...and a live run shares them across modes.
    ShardedRunResult live =
        runShardedReference(w.program, trace->length(), config, opts);
    EXPECT_EQ(live.warmRestores, live.perShard.size() - 1);

    // Summaries change wall-clock, never results or modeled cost.
    for (const ShardedRunResult *r : {&second, &live}) {
        EXPECT_EQ(r->stats.cycles, first.stats.cycles);
        EXPECT_EQ(r->stats.l1dMisses, first.stats.l1dMisses);
        EXPECT_EQ(r->stats.condMispredicts, first.stats.condMispredicts);
        EXPECT_EQ(r->warmedInsts, first.warmedInsts);
    }

    // A latency-only variant reuses the same warm files: the warm key
    // covers only table-shaping configuration.
    SimConfig slower = config;
    slower.mem.memLatencyFirst *= 2;
    ShardedRunResult variant = runShardedReference(trace, slower, opts);
    EXPECT_EQ(variant.warmRestores, variant.perShard.size() - 1);
    EXPECT_NE(variant.stats.cycles, first.stats.cycles);

    fs::remove_all(dir);
}

TEST(Sharded, StitchedWorkExceedsSequentialWork)
{
    // Sharding buys wall-clock, not work units: the plan charges the
    // detailed run plus every warming lead-in.
    Workload w = workloadOf(400'000);
    auto trace = ExecTrace::record(w.program);
    ShardOptions opts;
    opts.shards = 4;
    ShardedRunResult r =
        runShardedReference(trace, SimConfig{}, opts);
    EXPECT_EQ(r.detailedInsts, trace->length());
    EXPECT_GT(r.warmedInsts, 0u);
}

} // namespace
} // namespace yasim
