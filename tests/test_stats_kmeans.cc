/** @file Tests for k-means, BIC selection, and random projection. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/kmeans.hh"
#include "stats/projection.hh"
#include "support/rng.hh"

namespace yasim {
namespace {

/** Three well-separated 2-D blobs. */
std::vector<std::vector<double>>
threeBlobs(int per_blob, Rng &rng)
{
    const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 12}};
    std::vector<std::vector<double>> points;
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < per_blob; ++i)
            points.push_back({centers[c][0] + rng.nextGaussian() * 0.5,
                              centers[c][1] + rng.nextGaussian() * 0.5});
    return points;
}

TEST(Kmeans, FindsThreeBlobs)
{
    Rng rng(42);
    auto points = threeBlobs(50, rng);
    KmeansResult result = kmeans(points, 3, rng);
    EXPECT_EQ(result.numClusters, 3);
    // Every blob's points share one label.
    for (int blob = 0; blob < 3; ++blob) {
        int label = result.assignment[static_cast<size_t>(blob * 50)];
        for (int i = 0; i < 50; ++i)
            EXPECT_EQ(result.assignment[static_cast<size_t>(
                          blob * 50 + i)],
                      label);
    }
    EXPECT_LT(result.distortion / static_cast<double>(points.size()),
              1.0);
}

TEST(Kmeans, KOneGivesGrandCentroid)
{
    Rng rng(7);
    std::vector<std::vector<double>> points = {{0}, {2}, {4}};
    KmeansResult result = kmeans(points, 1, rng);
    EXPECT_EQ(result.numClusters, 1);
    EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
}

TEST(Kmeans, KClampedToPointCount)
{
    Rng rng(9);
    std::vector<std::vector<double>> points = {{0}, {1}};
    KmeansResult result = kmeans(points, 10, rng);
    EXPECT_LE(result.centroids.size(), 2u);
    EXPECT_NEAR(result.distortion, 0.0, 1e-12);
}

TEST(Kmeans, DistortionDecreasesWithK)
{
    Rng rng(11);
    auto points = threeBlobs(30, rng);
    double prev = 1e300;
    for (int k = 1; k <= 4; ++k) {
        Rng seed_rng(static_cast<uint64_t>(100 + k));
        KmeansResult r = kmeans(points, k, seed_rng);
        EXPECT_LE(r.distortion, prev + 1e-9);
        prev = r.distortion;
    }
}

TEST(Bic, PrefersTrueClusterCount)
{
    Rng rng(123);
    auto points = threeBlobs(60, rng);
    KSelection sel = selectK(points, 8, rng);
    EXPECT_EQ(sel.k, 3);
}

TEST(Bic, SingleBlobPrefersKOne)
{
    Rng rng(321);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 100; ++i)
        points.push_back(
            {rng.nextGaussian() * 0.1, rng.nextGaussian() * 0.1});
    KSelection sel = selectK(points, 6, rng);
    EXPECT_LE(sel.k, 2); // the 90% threshold may admit k=2
}

TEST(Projection, PreservesRelativeDistances)
{
    Rng rng(55);
    const size_t in_dim = 500, out_dim = 15;
    RandomProjection proj(in_dim, out_dim, rng);

    // Two similar sparse vectors and one very different one.
    std::vector<double> a(in_dim, 0.0), b(in_dim, 0.0), c(in_dim, 0.0);
    for (size_t i = 0; i < 20; ++i) {
        a[i * 7] = 1.0;
        b[i * 7] = 1.1;
        c[i * 11 + 3] = 2.0;
    }
    auto pa = proj.project(a);
    auto pb = proj.project(b);
    auto pc = proj.project(c);
    ASSERT_EQ(pa.size(), out_dim);

    auto d2 = [](const std::vector<double> &x,
                 const std::vector<double> &y) {
        double acc = 0;
        for (size_t i = 0; i < x.size(); ++i)
            acc += (x[i] - y[i]) * (x[i] - y[i]);
        return acc;
    };
    EXPECT_LT(d2(pa, pb), d2(pa, pc));
}

TEST(Projection, SparseMatchesDense)
{
    Rng rng(77);
    RandomProjection proj(100, 10, rng);
    std::vector<double> dense(100, 0.0);
    std::vector<std::pair<size_t, double>> sparse;
    dense[3] = 2.5;
    dense[97] = -1.0;
    sparse = {{3, 2.5}, {97, -1.0}};
    auto pd = proj.project(dense);
    auto ps = proj.projectSparse(sparse);
    for (size_t i = 0; i < pd.size(); ++i)
        EXPECT_NEAR(pd[i], ps[i], 1e-12);
}

TEST(Projection, NormalizeL1)
{
    std::vector<double> v = {1.0, -3.0};
    normalizeL1(v);
    EXPECT_DOUBLE_EQ(v[0], 0.25);
    EXPECT_DOUBLE_EQ(v[1], -0.75);
    std::vector<double> zero = {0.0, 0.0};
    normalizeL1(zero); // must not divide by zero
    EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

/** Property sweep: clustering is deterministic for a fixed seed. */
class KmeansDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(KmeansDeterminism, SameSeedSameResult)
{
    int k = GetParam();
    Rng data_rng(1000);
    auto points = threeBlobs(40, data_rng);
    Rng r1(2000), r2(2000);
    KmeansResult a = kmeans(points, k, r1);
    KmeansResult b = kmeans(points, k, r2);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.distortion, b.distortion);
}

INSTANTIATE_TEST_SUITE_P(Ks, KmeansDeterminism,
                         ::testing::Values(1, 2, 3, 5, 8));

} // namespace
} // namespace yasim
