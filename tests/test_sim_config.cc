/** @file Tests for the configuration space: PB factors, presets,
 *  envelope corners — and that every corner actually simulates. */

#include <gtest/gtest.h>

#include <set>

#include "isa/program_builder.hh"
#include "sim/config.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "sim/ooo_core.hh"
#include "stats/plackett_burman.hh"

namespace yasim {
namespace {

/** A small mixed workload touching every functional-unit class. */
Program
mixedProgram()
{
    ProgramBuilder b("mixed");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, 400);
    b.movi(5, static_cast<int64_t>(heapBase));
    b.movi(8, 6364136223846793005LL);
    b.bind(top);
    b.mul(3, 1, 8);
    b.div(4, 3, 2);
    b.fcvt(1, 3);
    b.fmul(2, 1, 1);
    b.fdiv(3, 2, 1);
    b.st(5, 3, 0);
    b.ld(6, 5, 0);
    b.addi(5, 5, 64);
    Label skip = b.newLabel();
    b.andi(7, 3, 1);
    b.beq(7, 0, skip);
    b.addi(9, 9, 1);
    b.bind(skip);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

TEST(SimConfigSpace, AllHighAndAllLowCornersRun)
{
    Program p = mixedProgram();
    for (int level : {-1, 1}) {
        std::vector<int> levels(numPbFactors(), level);
        SimConfig cfg = applyPbRow(levels, level > 0 ? "hi" : "lo");
        FunctionalSim fsim(p);
        OooCore core(cfg);
        uint64_t done = core.run(fsim, ~0ULL);
        EXPECT_GT(done, 1000u);
        EXPECT_GT(core.snapshot().cpi(), 0.0);
    }
}

TEST(SimConfigSpace, AllHighFasterThanAllLow)
{
    Program p1 = mixedProgram(), p2 = mixedProgram();
    std::vector<int> hi(numPbFactors(), 1), lo(numPbFactors(), -1);
    // High levels are chosen "bigger/faster" for resources but *slower*
    // for latencies; on this mixed workload the resource side wins
    // except for the latency factors — flip those to check direction.
    FunctionalSim f1(p1);
    OooCore big(applyPbRow(hi, "hi"));
    big.run(f1, ~0ULL);
    FunctionalSim f2(p2);
    OooCore small(applyPbRow(lo, "lo"));
    small.run(f2, ~0ULL);
    // Both must at least produce sane, different CPIs.
    EXPECT_NE(big.snapshot().cycles, small.snapshot().cycles);
}

TEST(SimConfigSpace, EveryPbRowSimulates)
{
    // The whole characterization rests on every design corner being a
    // legal machine. Run a short burst on each of the 44 rows.
    Program p = mixedProgram();
    PbDesign design = PbDesign::forFactors(numPbFactors(), false);
    for (size_t run = 0; run < design.numRuns(); ++run) {
        std::vector<int> levels(design.numFactors());
        for (size_t j = 0; j < design.numFactors(); ++j)
            levels[j] = design.level(run, j);
        SimConfig cfg = applyPbRow(levels, "row" + std::to_string(run));
        FunctionalSim fsim(p);
        OooCore core(cfg);
        uint64_t done = core.run(fsim, 2000);
        EXPECT_EQ(done, 2000u) << "row " << run;
    }
}

TEST(SimConfigSpace, EnvelopeNamesUnique)
{
    std::set<std::string> names;
    for (const SimConfig &cfg : envelopeConfigs())
        EXPECT_TRUE(names.insert(cfg.name).second) << cfg.name;
}

TEST(SimConfigSpace, ArchitecturalConfigIndexBounds)
{
    EXPECT_DEATH(architecturalConfig(0), "out of range");
    EXPECT_DEATH(architecturalConfig(5), "out of range");
    EXPECT_EQ(architecturalConfig(4).name, "config4");
}

TEST(SimConfigSpace, LatencyFactorsSlowTheMachine)
{
    // Factor semantics: the "memory latency (first)" factor's high
    // level must slow a memory-bound program.
    int mem_idx = -1;
    for (size_t j = 0; j < pbFactors().size(); ++j)
        if (pbFactors()[j].name == "memory latency (first)")
            mem_idx = static_cast<int>(j);
    ASSERT_GE(mem_idx, 0);

    auto chase = [] {
        ProgramBuilder b("chase");
        Label top = b.newLabel();
        b.movi(1, 0);
        b.movi(2, 1500);
        b.movi(5, static_cast<int64_t>(heapBase));
        b.movi(8, 2654435761LL);
        b.movi(3, 0);
        b.bind(top);
        b.add(4, 5, 3);
        b.ld(6, 4, 0);
        b.add(3, 3, 6);
        b.mul(3, 3, 8);
        b.addi(3, 3, 0x4F1BCDC8LL);
        b.andi(3, 3, 0x7FFFF8);
        b.addi(1, 1, 1);
        b.blt(1, 2, top);
        b.halt();
        return b.finish();
    };

    SimConfig base;
    SimConfig slow = base;
    pbFactors()[static_cast<size_t>(mem_idx)].apply(slow, true);
    pbFactors()[static_cast<size_t>(mem_idx)].apply(base, false);

    Program p1 = chase(), p2 = chase();
    FunctionalSim f1(p1), f2(p2);
    OooCore fast_core(base), slow_core(slow);
    fast_core.run(f1, ~0ULL);
    slow_core.run(f2, ~0ULL);
    EXPECT_GT(slow_core.snapshot().cpi(),
              fast_core.snapshot().cpi() * 1.5);
}

TEST(SimConfigSpace, TrivialComputationDefaultOff)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.core.trivialComputation);
    EXPECT_FALSE(cfg.mem.nextLinePrefetch);
    for (const SimConfig &preset : architecturalConfigs()) {
        EXPECT_FALSE(preset.core.trivialComputation);
        EXPECT_FALSE(preset.mem.nextLinePrefetch);
    }
}

} // namespace
} // namespace yasim
