// Fixture for H1: three includes — one used, one unused (the
// finding), one unused but annotated keep.
#include "engine/h1_used.hh"
#include "engine/h1_unused.hh"
#include "engine/h1_kept.hh" // yasim-lint: keep

namespace yasim {

int
consumeHelpers()
{
    return usedHelper();
}

} // namespace yasim
