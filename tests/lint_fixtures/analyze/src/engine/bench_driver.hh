// Fixture: the sanctioned bench seam. It wraps engine internals;
// G1's walk must not look behind it.
#ifndef FIXTURE_ENGINE_BENCH_DRIVER_HH
#define FIXTURE_ENGINE_BENCH_DRIVER_HH

#include "engine/engine.hh"

namespace yasim {

class BenchDriver
{
  public:
    void runAll();
};

} // namespace yasim

#endif // FIXTURE_ENGINE_BENCH_DRIVER_HH
