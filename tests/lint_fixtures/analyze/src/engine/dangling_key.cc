// Fixture: a key() annotation naming a header that is not in the
// analyzed tree — K1 must report the annotation itself as stale.
#include <string>

namespace yasim {

// yasim-lint: key(dangling) covers GhostConfig(engine/ghost_config.hh)
std::string
ghostKeyText()
{
    return "ghost";
}

} // namespace yasim
