// Fixture: stands in for engine/engine.hh, forbidden to bench code.
#ifndef FIXTURE_ENGINE_ENGINE_HH
#define FIXTURE_ENGINE_ENGINE_HH

namespace yasim {

class ExperimentEngine
{
  public:
    void runMatrix();
};

} // namespace yasim

#endif // FIXTURE_ENGINE_ENGINE_HH
