// Fixture stamp function for K1: covers WidgetConfig but only stamps
// `ways`, so the analyzer must flag `sets` as missing from the key.
#include <string>

#include "engine/widget_config.hh"

namespace yasim {

// yasim-lint: key(widget) covers WidgetConfig(engine/widget_config.hh)
std::string
widgetKeyText(const WidgetConfig &config)
{
    return "ways=" + std::to_string(config.ways);
}

} // namespace yasim
