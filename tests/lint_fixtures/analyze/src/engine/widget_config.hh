// Fixture config struct for K1: one field stamped into the key, one
// missed (the finding), one justifiably exempt, one allow-suppressed.
#ifndef FIXTURE_ENGINE_WIDGET_CONFIG_HH
#define FIXTURE_ENGINE_WIDGET_CONFIG_HH

#include <string>

namespace yasim {

struct WidgetConfig
{
    /** Stamped by widgetKeyText: clean. */
    int ways = 4;
    /** Deliberately missing from the key: the K1 positive. */
    int sets = 64;
    // yasim-lint: key-exempt(widget: descriptive label only)
    std::string note = "fixture";
    int scratch = 0; // yasim-lint: allow(K1)
};

} // namespace yasim

#endif // FIXTURE_ENGINE_WIDGET_CONFIG_HH
