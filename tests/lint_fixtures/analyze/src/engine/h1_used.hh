// Fixture for H1: a header whose symbol the consumer actually calls.
#ifndef FIXTURE_ENGINE_H1_USED_HH
#define FIXTURE_ENGINE_H1_USED_HH

namespace yasim {

int usedHelper();

} // namespace yasim

#endif // FIXTURE_ENGINE_H1_USED_HH
