// Fixture for H1: unused like h1_unused.hh, but the consumer marks
// the include '// yasim-lint: keep', the load-bearing escape hatch.
#ifndef FIXTURE_ENGINE_H1_KEPT_HH
#define FIXTURE_ENGINE_H1_KEPT_HH

namespace yasim {

int keptHelper();

} // namespace yasim

#endif // FIXTURE_ENGINE_H1_KEPT_HH
