// Fixture for H1: a header nothing in the consumer references.
#ifndef FIXTURE_ENGINE_H1_UNUSED_HH
#define FIXTURE_ENGINE_H1_UNUSED_HH

namespace yasim {

int unusedHelper();

} // namespace yasim

#endif // FIXTURE_ENGINE_H1_UNUSED_HH
