// Fixture: stands in for sim/functional.hh, the header the G1
// layering policy forbids techniques/core from reaching.
#ifndef FIXTURE_SIM_FUNCTIONAL_HH
#define FIXTURE_SIM_FUNCTIONAL_HH

namespace yasim {

class FunctionalSim
{
  public:
    void step();
};

} // namespace yasim

#endif // FIXTURE_SIM_FUNCTIONAL_HH
