// Fixture serialization unit for V1: a framed format with a version
// constant and two serialized() functions in snapshot_io.cc.
#ifndef FIXTURE_SIM_SNAPSHOT_IO_HH
#define FIXTURE_SIM_SNAPSHOT_IO_HH

#include <cstdint>
#include <vector>

namespace yasim {

// yasim-lint: version(snapshot)
constexpr uint32_t kSnapshotFormatVersion = 1;

void writeSnapshot(std::vector<uint8_t> &out, uint64_t ticks);
bool readSnapshot(const std::vector<uint8_t> &in, uint64_t &ticks);

} // namespace yasim

#endif // FIXTURE_SIM_SNAPSHOT_IO_HH
