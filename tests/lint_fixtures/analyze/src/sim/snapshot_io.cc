// Fixture serialization unit for V1: the function bodies below are
// fingerprinted into the lock; editing either one without bumping
// kSnapshotFormatVersion must trip the rule.
#include "sim/snapshot_io.hh"

namespace yasim {

// yasim-lint: serialized(snapshot)
void
writeSnapshot(std::vector<uint8_t> &out, uint64_t ticks)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<uint8_t>(ticks >> shift));
}

// yasim-lint: serialized(snapshot)
bool
readSnapshot(const std::vector<uint8_t> &in, uint64_t &ticks)
{
    if (in.size() < 8)
        return false;
    ticks = 0;
    for (int shift = 0; shift < 64; shift += 8)
        ticks |= static_cast<uint64_t>(in[shift / 8]) << shift;
    return true;
}

} // namespace yasim
