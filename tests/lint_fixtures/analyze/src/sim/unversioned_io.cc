// Fixture for V1: a serialized() function whose unit never declares a
// version() constant — the annotation audit must flag it on every run.

namespace yasim {

// yasim-lint: serialized(orphan)
void
writeOrphan(int *out)
{
    *out = 1;
}

} // namespace yasim
