// Fixture for C2: this file includes the executor header, so its
// static-storage state is reachable from pool tasks. One unguarded
// namespace-scope variable and one unguarded function-local static
// are the positives; the guarded / atomic / const declarations are
// the sanctioned forms.
#include <atomic>
#include <mutex>

#include "support/thread_pool.hh"

namespace yasim {

int unguardedHits = 0;

std::mutex stateMutex;
int guardedHits = 0; // yasim-lint: guarded(stateMutex)

std::atomic<int> atomicHits{0};

const int kHitLimit = 16;

int
countCalls()
{
    static int calls = 0;
    ++calls;
    return calls;
}

void
dispatchHits()
{
    ThreadPool pool;
    pool.submit();
}

} // namespace yasim
