// Fixture: stands in for support/thread_pool.hh — an executor header
// (C2 roots) that the bench layer must not include directly (G1).
#ifndef FIXTURE_SUPPORT_THREAD_POOL_HH
#define FIXTURE_SUPPORT_THREAD_POOL_HH

namespace yasim {

class ThreadPool
{
  public:
    void submit();
};

} // namespace yasim

#endif // FIXTURE_SUPPORT_THREAD_POOL_HH
