// Fixture for C2: mutable namespace-scope state in a file no executor
// root reaches — outside C2's blast radius, so no finding.

namespace yasim {

int isolatedCounter = 0;

} // namespace yasim
