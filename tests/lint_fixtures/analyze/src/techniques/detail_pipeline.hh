// Fixture: an intermediate header that leaks sim/functional.hh to its
// includers — the violation G1 must see through one level of
// indirection.
#ifndef FIXTURE_TECH_DETAIL_PIPELINE_HH
#define FIXTURE_TECH_DETAIL_PIPELINE_HH

#include "sim/functional.hh"

namespace yasim {

void runDetailPipeline();

} // namespace yasim

#endif // FIXTURE_TECH_DETAIL_PIPELINE_HH
