// Fixture: G1 negative. Consuming the seam header is the sanctioned
// way for a technique to obtain a step stream.
#include "techniques/trace_store.hh"

namespace yasim {

void
replayEverything()
{
    openStepSource();
}

} // namespace yasim
