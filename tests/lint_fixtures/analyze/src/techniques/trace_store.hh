// Fixture: the sanctioned StepSource seam. It may include
// sim/functional.hh itself; G1's reachability walk stops here.
#ifndef FIXTURE_TECH_TRACE_STORE_HH
#define FIXTURE_TECH_TRACE_STORE_HH

#include "sim/functional.hh"

namespace yasim {

void openStepSource();

} // namespace yasim

#endif // FIXTURE_TECH_TRACE_STORE_HH
