// Fixture: G1 suppressed. The same transitive reach as
// uses_functional.cc, silenced by a line suppression on the include
// that starts the chain.
#include "techniques/detail_pipeline.hh" // yasim-lint: allow(G1)

namespace yasim {

void
suppressedProfile()
{
    runDetailPipeline();
}

} // namespace yasim
