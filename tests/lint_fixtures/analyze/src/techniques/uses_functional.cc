// Fixture: G1 positive. The direct include looks innocent; the
// violation is two hops away (detail_pipeline.hh -> functional.hh).
#include "techniques/detail_pipeline.hh"

namespace yasim {

void
profileEverything()
{
    runDetailPipeline();
}

} // namespace yasim
