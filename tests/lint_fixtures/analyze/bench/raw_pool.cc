// Fixture: G1 positive under the bench policy — driving the thread
// pool directly instead of going through BenchDriver.
#include "support/thread_pool.hh"

namespace yasim {

void
benchRawPool()
{
    ThreadPool pool;
    pool.submit();
}

} // namespace yasim
