// Fixture: G1 negative under the bench policy. bench_driver.hh wraps
// engine.hh, but the seam is opaque — the engine internals behind it
// are not the bench's reach.
#include "engine/bench_driver.hh"

namespace yasim {

void
benchThroughDriver()
{
    BenchDriver driver;
    driver.runAll();
}

} // namespace yasim
