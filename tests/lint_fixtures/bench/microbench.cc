/**
 * @file
 * Lint fixture: a file whose path suffix matches the built-in
 * allowlist seam (bench/microbench.cc is the designated home for
 * timing loops and pool plumbing). With the allowlist on it must lint
 * clean; with --no-builtin-allowlist the D1/L2 content must surface.
 * Never compiled — linted by test_lint only.
 */

#include <chrono>

#include "support/thread_pool.hh"

namespace yasim {

double
timedRegion()
{
    auto t0 = std::chrono::steady_clock::now();
    ThreadPool &pool = globalPool();
    (void)pool;
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace yasim
