/**
 * @file
 * Lint fixture: L2 violations (a bench driver poking engine internals
 * instead of going through BenchDriver / SimulationService). Never
 * compiled — linted by test_lint only.
 */

#include "support/thread_pool.hh"

namespace yasim {

void
pokeInternals()
{
    TraceStore store;
    (void)store;
}

} // namespace yasim
