/**
 * @file
 * Lint fixture shaped like the real src/support/artifact_io.cc path:
 * the one sanctioned temp+rename implementation. The builtin
 * allowlist must exempt it from S2; disabling the allowlist must make
 * the raw rule fire. Never compiled; linted by test_lint only.
 */

#include <filesystem>
#include <fstream>
#include <string>

namespace yasim {

void
publishFrame(const std::string &path, const std::string &frame)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        out << frame;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
}

} // namespace yasim
