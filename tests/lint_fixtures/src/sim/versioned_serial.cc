/**
 * @file
 * Lint fixture: S1-clean serialization (the stream leads with a
 * format-version constant). Never compiled — linted by test_lint
 * only.
 */

#include <cstdint>
#include <ostream>

namespace yasim {

constexpr uint32_t kBlobFormatVersion = 1;

template <typename T>
void
putRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeBlob(std::ostream &os, uint64_t cycles, double cpi)
{
    putRaw(os, kBlobFormatVersion);
    putRaw(os, cycles);
    putRaw(os, cpi);
}

} // namespace yasim
