/**
 * @file
 * Lint fixture: S1 violation (raw serialization without a
 * format-version marker). Never compiled — linted by test_lint only.
 */

#include <cstdint>
#include <ostream>

namespace yasim {

template <typename T>
void
putRaw(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeBlob(std::ostream &os, uint64_t cycles, double cpi)
{
    putRaw(os, cycles);
    putRaw(os, cpi);
}

} // namespace yasim
