/**
 * @file
 * Lint fixture: D1 violations (entropy / wall-clock sources). Never
 * compiled — linted by test_lint only.
 */

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace yasim {

int
entropySources()
{
    int seed = rand();
    std::random_device dev;
    auto t0 = std::chrono::steady_clock::now();
    std::time_t wall = time(nullptr);

    // yasim-lint: allow(D1)
    int sanctioned = rand();

    int alsoSanctioned = rand(); // yasim-lint: allow(D1)

    (void)dev;
    (void)t0;
    return seed + sanctioned + alsoSanctioned + static_cast<int>(wall);
}

// A comment mentioning rand() and std::random_device must not trip.
const char *kDoc = "call rand() here";

} // namespace yasim
