/**
 * @file
 * Lint fixture: a file with nothing to report. Uses ordered
 * containers, no entropy, no raw serialization. Never compiled —
 * linted by test_lint only.
 */

#include <cstdio>
#include <map>
#include <string>

namespace yasim {

void
emitOrdered(const std::map<std::string, int> &counts)
{
    for (const auto &kv : counts)
        std::printf("%s %d\n", kv.first.c_str(), kv.second);
}

} // namespace yasim
