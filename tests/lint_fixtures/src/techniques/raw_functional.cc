/**
 * @file
 * Lint fixture: L1 violation (a technique reaching for FunctionalSim
 * instead of the StepSource seam). Never compiled — linted by
 * test_lint only.
 */

#include "sim/functional.hh"

namespace yasim {

uint64_t
runDirectly()
{
    FunctionalSim sim;
    return sim.instsExecuted();
}

} // namespace yasim
