/**
 * @file
 * Lint fixture: the same ofstream+rename shape as raw_persist.cc but
 * with a line-level S2 suppression on the publish site, so the
 * suppression machinery is exercised for the persistence rule too.
 * Never compiled; linted by test_lint only.
 */

#include <filesystem>
#include <fstream>
#include <string>

namespace yasim {

void
persistSuppressed(const std::string &path, const std::string &payload)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        out << payload;
    }
    std::error_code ec;
    // yasim-lint: allow(S2)
    std::filesystem::rename(tmp, path, ec);
}

} // namespace yasim
