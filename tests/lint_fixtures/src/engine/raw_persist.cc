/**
 * @file
 * Lint fixture: hand-rolled artifact persistence in library code — an
 * ofstream write published with a rename — which must trip S2. Never
 * compiled; linted by test_lint only.
 */

#include <filesystem>
#include <fstream>
#include <string>

namespace yasim {

void
persistRaw(const std::string &path, const std::string &payload)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        out << payload;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
}

} // namespace yasim
