/**
 * @file
 * Lint fixture: D2 violations (iteration over unordered containers).
 * Never compiled — linted by test_lint only.
 */

#include <cstdio>
#include <string>
#include <unordered_map>

#include "support/ordered.hh"

namespace yasim {

void
emitCounts(const std::unordered_map<std::string, int> &counts)
{
    for (const auto &kv : counts)
        std::printf("%s %d\n", kv.first.c_str(), kv.second);
}

void
emitCountsSorted(const std::unordered_map<std::string, int> &counts)
{
    for (const auto *kv : orderedView(counts))
        std::printf("%s %d\n", kv->first.c_str(), kv->second);
}

void
localDeclaration()
{
    std::unordered_map<int, int> histogram;
    for (const auto &kv : histogram)
        std::printf("%d %d\n", kv.first, kv.second);
}

} // namespace yasim
