/**
 * @file
 * Lint fixture: file-wide suppression. The D2 violations below are
 * silenced by the allow-file directive. Never compiled — linted by
 * test_lint only.
 */

// yasim-lint: allow-file(D2)

#include <cstdio>
#include <unordered_set>

namespace yasim {

void
dumpTwice(const std::unordered_set<int> &seen)
{
    for (int v : seen)
        std::printf("%d\n", v);
    for (int v : seen)
        std::printf("%d\n", v);
}

} // namespace yasim
