/** @file Tests for the cycle-level out-of-order core. */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sim/bb_profiler.hh"
#include "sim/functional.hh"
#include "sim/memory.hh"
#include "sim/ooo_core.hh"

namespace yasim {
namespace {

/** A simple ALU loop with independent operations (high ILP). */
Program
ilpLoop(uint64_t trips)
{
    ProgramBuilder b("ilp");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, static_cast<int64_t>(trips));
    b.bind(top);
    b.addi(3, 3, 1);
    b.addi(4, 4, 1);
    b.addi(5, 5, 1);
    b.addi(6, 6, 1);
    b.addi(7, 7, 1);
    b.addi(8, 8, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

/** A serial dependence chain (ILP = 1). */
Program
serialChain(uint64_t trips)
{
    ProgramBuilder b("serial");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, static_cast<int64_t>(trips));
    b.bind(top);
    b.addi(3, 3, 1);
    b.addi(3, 3, 1);
    b.addi(3, 3, 1);
    b.addi(3, 3, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

/** A divide-by-constant-one loop (pure trivial computations). */
Program
trivialDivLoop(uint64_t trips)
{
    ProgramBuilder b("trivdiv");
    Label top = b.newLabel();
    b.movi(1, 0);
    b.movi(2, static_cast<int64_t>(trips));
    b.movi(3, 1);
    b.movi(4, 1000);
    b.bind(top);
    b.div(4, 4, 3); // x / 1: trivial, serial chain through r4
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    return b.finish();
}

SimStats
simulate(Program program, SimConfig config)
{
    FunctionalSim fsim(program);
    OooCore core(config);
    core.run(fsim, ~0ULL);
    return core.snapshot();
}

TEST(OooCore, IpcNeverExceedsWidth)
{
    SimConfig cfg;
    cfg.core.issueWidth = cfg.core.commitWidth = 4;
    SimStats stats = simulate(ilpLoop(5000), cfg);
    EXPECT_GT(stats.ipc(), 1.0);
    EXPECT_LE(stats.ipc(), 4.0);
}

TEST(OooCore, WiderMachineIsFaster)
{
    SimConfig narrow;
    narrow.core.fetchWidth = narrow.core.decodeWidth = 2;
    narrow.core.issueWidth = narrow.core.commitWidth = 2;
    SimConfig wide;
    wide.core.fetchWidth = wide.core.decodeWidth = 8;
    wide.core.issueWidth = wide.core.commitWidth = 8;
    wide.core.intAlus = 8;
    SimStats n = simulate(ilpLoop(5000), narrow);
    SimStats w = simulate(ilpLoop(5000), wide);
    EXPECT_GT(w.ipc(), n.ipc() * 1.3);
}

TEST(OooCore, SerialChainBoundByLatency)
{
    SimConfig cfg;
    cfg.core.intAluLatency = 1;
    SimStats fast = simulate(serialChain(3000), cfg);
    cfg.core.intAluLatency = 2;
    SimStats slow = simulate(serialChain(3000), cfg);
    // Four chained adds per iteration: doubling ALU latency must cost
    // nearly 4 extra cycles per iteration.
    EXPECT_GT(slow.cpi(), fast.cpi() * 1.4);
}

TEST(OooCore, IlpBeatsSerial)
{
    SimConfig cfg;
    SimStats ilp = simulate(ilpLoop(3000), cfg);
    SimStats serial = simulate(serialChain(3000), cfg);
    EXPECT_GT(ilp.ipc(), serial.ipc() * 1.5);
}

TEST(OooCore, RobSizeLimitsMemoryParallelism)
{
    // A strided-miss loop: a big ROB can overlap misses, a tiny one
    // cannot.
    auto missy = [] {
        ProgramBuilder b("missy");
        Label top = b.newLabel();
        b.movi(1, 0);
        b.movi(2, 3000);
        b.movi(5, static_cast<int64_t>(heapBase));
        b.bind(top);
        b.ld(6, 5, 0); // independent miss per iteration
        b.ld(7, 5, 65536);
        b.addi(5, 5, 128);
        b.addi(1, 1, 1);
        b.blt(1, 2, top);
        b.halt();
        return b.finish();
    };
    SimConfig small_rob;
    small_rob.core.robEntries = 8;
    SimConfig big_rob;
    big_rob.core.robEntries = 256;
    SimStats small_stats = simulate(missy(), small_rob);
    SimStats big_stats = simulate(missy(), big_rob);
    EXPECT_GT(small_stats.cpi(), big_stats.cpi() * 1.2);
}

TEST(OooCore, MispredictPenaltyBites)
{
    // Data-dependent 50/50 branches.
    auto branchy = [] {
        ProgramBuilder b("branchy");
        Label top = b.newLabel();
        b.movi(1, 0);
        b.movi(2, 4000);
        b.movi(3, 0x12345);
        b.movi(8, 6364136223846793005LL);
        b.bind(top);
        b.mul(3, 3, 8);
        b.addi(3, 3, 1442695040888963407LL);
        b.shri(4, 3, 33);
        b.andi(4, 4, 1);
        Label skip = b.newLabel();
        b.bne(4, 0, skip);
        b.addi(5, 5, 1);
        b.bind(skip);
        b.addi(1, 1, 1);
        b.blt(1, 2, top);
        b.halt();
        return b.finish();
    };
    SimConfig cheap;
    cheap.core.mispredictPenalty = 1;
    cheap.core.frontendDepth = 2;
    SimConfig pricey;
    pricey.core.mispredictPenalty = 20;
    pricey.core.frontendDepth = 10;
    SimStats c = simulate(branchy(), cheap);
    SimStats p = simulate(branchy(), pricey);
    EXPECT_GT(c.condMispredicts, c.condBranches / 8);
    EXPECT_GT(p.cpi(), c.cpi() * 1.2);
}

TEST(OooCore, TrivialComputationSpeedsUpTrivialDivides)
{
    SimConfig base;
    base.core.intDivLatency = 40;
    SimConfig tc = base;
    tc.core.trivialComputation = true;
    SimStats plain = simulate(trivialDivLoop(2000), base);
    SimStats enhanced = simulate(trivialDivLoop(2000), tc);
    EXPECT_GT(enhanced.trivialOps, 1900u);
    EXPECT_EQ(plain.trivialOps, 0u);
    // The serial divide chain collapses from ~40 to ~1 cycle per trip.
    EXPECT_GT(plain.cpi(), enhanced.cpi() * 3.0);
}

TEST(OooCore, StoreForwardingBeatsCacheLatency)
{
    auto fwd = [] {
        ProgramBuilder b("fwd");
        Label top = b.newLabel();
        b.movi(1, 0);
        b.movi(2, 2000);
        b.movi(5, static_cast<int64_t>(heapBase));
        b.bind(top);
        b.st(5, 1, 0);
        b.ld(6, 5, 0); // forwarded from the store
        b.addi(1, 1, 1);
        b.blt(1, 2, top);
        b.halt();
        return b.finish();
    };
    SimConfig cfg;
    cfg.mem.l1dLatency = 4;
    SimStats stats = simulate(fwd(), cfg);
    // Load value available promptly; the loop must not serialize on a
    // 4-cycle L1 for every load.
    EXPECT_LT(stats.cpi(), 4.0);
}

TEST(OooCore, ResetPipelineKeepsCachesAndStats)
{
    Program p = ilpLoop(2000);
    FunctionalSim fsim(p);
    SimConfig cfg;
    OooCore core(cfg);
    core.run(fsim, 3000);
    SimStats mid = core.snapshot();
    core.resetPipeline();
    core.run(fsim, ~0ULL);
    SimStats end = core.snapshot();
    EXPECT_GT(end.instructions, mid.instructions);
    EXPECT_GE(end.cycles, mid.cycles);
}

TEST(OooCore, ChunkedRunMatchesMonolithicApproximately)
{
    SimConfig cfg;
    SimStats mono = simulate(ilpLoop(4000), cfg);

    Program prog_fsim = ilpLoop(4000);
    FunctionalSim fsim(prog_fsim);
    OooCore core(cfg);
    while (core.run(fsim, 500) == 500) {
    }
    SimStats chunked = core.snapshot();
    EXPECT_EQ(chunked.instructions, mono.instructions);
    // Chunking adds pipeline drain/fill at the boundaries only.
    EXPECT_NEAR(chunked.cpi(), mono.cpi(), mono.cpi() * 0.15);
}

TEST(OooCore, ProfilerSeesEveryInstruction)
{
    Program p = ilpLoop(100);
    FunctionalSim fsim(p);
    SimConfig cfg;
    OooCore core(cfg);
    BbProfiler profiler(p);
    uint64_t done = core.run(fsim, ~0ULL, &profiler);
    double total = 0.0;
    for (double v : profiler.bbv())
        total += v;
    EXPECT_DOUBLE_EQ(total, static_cast<double>(done));
}

TEST(OooCore, SnapshotDeltasArePerRegion)
{
    Program p = ilpLoop(3000);
    FunctionalSim fsim(p);
    SimConfig cfg;
    OooCore core(cfg);
    core.run(fsim, 1000);
    SimStats a = core.snapshot();
    core.run(fsim, 1000);
    SimStats b = core.snapshot();
    SimStats delta = b - a;
    EXPECT_EQ(delta.instructions, 1000u);
    EXPECT_GT(delta.cycles, 0u);
}

/** Memory-latency sweep: CPI must rise monotonically with latency. */
class MemLatencySweep : public ::testing::TestWithParam<uint32_t>
{
  public:
    static Program missLoop()
    {
        ProgramBuilder b("miss");
        Label top = b.newLabel();
        b.movi(1, 0);
        b.movi(2, 1500);
        b.movi(5, static_cast<int64_t>(heapBase));
        b.movi(8, 2654435761LL);
        b.bind(top);
        b.ld(6, 5, 0);
        b.add(5, 5, 6);
        b.mul(5, 5, 8);
        b.addi(5, 5, 0x4F1BCDC8LL);
        b.andi(5, 5, 0x3FFFFF8);
        b.movi(7, static_cast<int64_t>(heapBase));
        b.add(5, 5, 7);
        b.andi(5, 5, ~7LL);
        b.addi(1, 1, 1);
        b.blt(1, 2, top);
        b.halt();
        return b.finish();
    }
};

TEST_P(MemLatencySweep, CpiTracksMemoryLatency)
{
    SimConfig fast;
    fast.mem.memLatencyFirst = 50;
    SimConfig slow;
    slow.mem.memLatencyFirst = GetParam();
    SimStats f = simulate(missLoop(), fast);
    SimStats s = simulate(missLoop(), slow);
    EXPECT_GT(s.cpi(), f.cpi());
}

INSTANTIATE_TEST_SUITE_P(Latencies, MemLatencySweep,
                         ::testing::Values(100, 200, 400));

} // namespace
} // namespace yasim
