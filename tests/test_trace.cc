/**
 * @file
 * Tests for the execution-trace record/replay subsystem: bit-identity
 * of the replayed stream, warming, and detailed simulation against live
 * interpretation; embedded-checkpoint resume; serialization round trips
 * and rejection; the shared TraceStore (dedup, concurrency, disk spill,
 * LRU eviction); and the engine wiring that makes a whole configuration
 * sweep cost exactly one functional interpretation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "sim/bb_profiler.hh"
#include "sim/config.hh"
#include "sim/functional.hh"
#include "sim/ooo_core.hh"
#include "sim/trace.hh"
#include "support/artifact_io.hh"
#include "support/failpoint.hh"
#include "support/rng.hh"
#include "techniques/full_reference.hh"
#include "techniques/random_sampling.hh"
#include "techniques/reduced_input.hh"
#include "techniques/service.hh"
#include "techniques/simpoint.hh"
#include "techniques/smarts.hh"
#include "techniques/trace_store.hh"
#include "techniques/truncated.hh"

namespace yasim {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kRefInsts = 150'000;

SuiteConfig
tinySuite()
{
    SuiteConfig suite;
    suite.referenceInstructions = kRefInsts;
    return suite;
}

/** Bitwise double equality — replay promises bit-identical results. */
bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
bitEq(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!bitEq(a[i], b[i]))
            return false;
    return true;
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.l1iAccesses, b.l1iAccesses);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.trivialOps, b.trivialOps);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.memStallCycles, b.memStallCycles);
}

void
expectBitIdentical(const TechniqueResult &a, const TechniqueResult &b)
{
    EXPECT_EQ(a.technique, b.technique);
    EXPECT_EQ(a.permutation, b.permutation);
    EXPECT_TRUE(bitEq(a.cpi, b.cpi));
    EXPECT_TRUE(bitEq(a.metrics, b.metrics));
    EXPECT_TRUE(bitEq(a.bbef, b.bbef));
    EXPECT_TRUE(bitEq(a.bbv, b.bbv));
    EXPECT_TRUE(bitEq(a.workUnits, b.workUnits));
    EXPECT_EQ(a.detailedInsts, b.detailedInsts);
    expectSameStats(a.detailed, b.detailed);
}

/** A scratch cache directory wiped before and after each use. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : dir(fs::path(::testing::TempDir()) / name)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
    std::string str() const { return dir.string(); }

  private:
    fs::path dir;
};

std::shared_ptr<const ExecTrace>
recordGzip()
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    return ExecTrace::record(w.program);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
dump(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

void
expectSameRecord(const ExecRecord &a, const ExecRecord &b, uint64_t at)
{
    ASSERT_NE(a.inst, nullptr) << "at instruction " << at;
    ASSERT_NE(b.inst, nullptr) << "at instruction " << at;
    ASSERT_EQ(a.inst->op, b.inst->op) << "at instruction " << at;
    ASSERT_EQ(a.pc, b.pc) << "at instruction " << at;
    ASSERT_EQ(a.nextPc, b.nextPc) << "at instruction " << at;
    ASSERT_EQ(a.memAddr, b.memAddr) << "at instruction " << at;
    ASSERT_EQ(a.taken, b.taken) << "at instruction " << at;
    ASSERT_EQ(a.trivial, b.trivial) << "at instruction " << at;
}

/**
 * Forwarding StepSource that hides the concrete type, so
 * OooCore::run's dynamic dispatch takes the generic path and
 * stepBatch exercises the default per-step fallback.
 */
class ForwardingSource : public StepSource
{
  public:
    explicit ForwardingSource(StepSource &inner) : inner(inner) {}
    bool step(ExecRecord &record) override { return inner.step(record); }
    uint64_t fastForward(uint64_t count) override
    {
        return inner.fastForward(count);
    }
    uint64_t fastForwardWarm(uint64_t count, MemoryHierarchy *mem,
                             CombinedPredictor *bp) override
    {
        return inner.fastForwardWarm(count, mem, bp);
    }
    bool halted() const override { return inner.halted(); }
    uint64_t instsExecuted() const override
    {
        return inner.instsExecuted();
    }

  private:
    StepSource &inner;
};

// ------------------------------------------------- stream bit-identity

TEST(Trace, RecordCapturesFullRunAndProfile)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);

    FunctionalSim fsim(w.program);
    BbProfiler profiler(w.program);
    ExecRecord rec;
    while (fsim.step(rec))
        profiler.record(rec.pc);

    EXPECT_EQ(trace->length(), fsim.instsExecuted());
    EXPECT_TRUE(bitEq(trace->bbef(), profiler.bbef()));
    EXPECT_TRUE(bitEq(trace->bbv(), profiler.bbv()));
    EXPECT_GT(trace->footprintBytes(), 0u);
}

TEST(Trace, ReplayedStepStreamIsBitIdentical)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);

    FunctionalSim live(w.program);
    TraceReplayer replay(trace);
    ExecRecord lrec, rrec;
    uint64_t n = 0;
    while (true) {
        bool lmore = live.step(lrec);
        bool rmore = replay.step(rrec);
        ASSERT_EQ(lmore, rmore) << "stream lengths diverge at " << n;
        if (!lmore)
            break;
        ASSERT_EQ(lrec.pc, rrec.pc) << "at instruction " << n;
        ASSERT_EQ(lrec.nextPc, rrec.nextPc) << "at instruction " << n;
        ASSERT_EQ(lrec.memAddr, rrec.memAddr) << "at instruction " << n;
        ASSERT_EQ(lrec.taken, rrec.taken) << "at instruction " << n;
        ASSERT_EQ(lrec.trivial, rrec.trivial) << "at instruction " << n;
        ++n;
    }
    EXPECT_EQ(n, trace->length());
    EXPECT_TRUE(replay.halted());
    EXPECT_EQ(replay.instsExecuted(), trace->length());
}

TEST(Trace, FastForwardThenStepMatchesLive)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);
    const uint64_t skip = trace->length() / 3;

    FunctionalSim live(w.program);
    TraceReplayer replay(trace);
    EXPECT_EQ(live.fastForward(skip), replay.fastForward(skip));
    EXPECT_EQ(live.instsExecuted(), replay.instsExecuted());

    ExecRecord lrec, rrec;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(live.step(lrec), replay.step(rrec));
        ASSERT_EQ(lrec.pc, rrec.pc);
        ASSERT_EQ(lrec.nextPc, rrec.nextPc);
        ASSERT_EQ(lrec.memAddr, rrec.memAddr);
    }

    // Fast-forwarding past the end clamps identically.
    EXPECT_EQ(live.fastForward(~0ULL), replay.fastForward(~0ULL));
    EXPECT_TRUE(replay.halted());
}

TEST(Trace, WarmingSequenceIsBitIdentical)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);
    const SimConfig config = architecturalConfig(2);
    const uint64_t warm = trace->length() / 2;

    FunctionalSim live(w.program);
    OooCore live_core(config);
    live.fastForwardWarm(warm, &live_core.memHierarchy(),
                         &live_core.predictor());
    live_core.run(live, 20'000);

    TraceReplayer replay(trace);
    OooCore replay_core(config);
    replay.fastForwardWarm(warm, &replay_core.memHierarchy(),
                           &replay_core.predictor());
    replay_core.run(replay, 20'000);

    expectSameStats(live_core.snapshot(), replay_core.snapshot());
}

TEST(Trace, DetailedSimIsBitIdenticalAcrossConfigs)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);

    for (int idx : {1, 2, 4}) {
        const SimConfig config = architecturalConfig(idx);

        FunctionalSim live(w.program);
        OooCore live_core(config);
        BbProfiler live_prof(w.program);
        uint64_t live_done = live_core.run(live, ~0ULL, &live_prof);

        TraceReplayer replay(trace);
        OooCore replay_core(config);
        BbProfiler replay_prof(trace->program());
        uint64_t replay_done =
            replay_core.run(replay, ~0ULL, &replay_prof);

        EXPECT_EQ(live_done, replay_done) << "config " << idx;
        expectSameStats(live_core.snapshot(), replay_core.snapshot());
        EXPECT_TRUE(bitEq(live_prof.bbef(), replay_prof.bbef()));
        EXPECT_TRUE(bitEq(live_prof.bbv(), replay_prof.bbv()));
    }
}

// --------------------------------------------------------- checkpoints

TEST(Trace, CheckpointResumeMatchesReplayMidTrace)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    ExecTrace::Options options;
    options.checkpointSpacing = 20'000;
    auto trace = ExecTrace::record(w.program, options);
    ASSERT_GE(trace->numCheckpoints(), 2u);
    EXPECT_EQ(trace->checkpointSpacing(), 20'000u);

    const uint64_t position = trace->length() / 2;

    // Restoring a live simulator must cost at most one spacing of
    // fast-forward, and the stream from there must equal the replayed
    // stream from the same position.
    FunctionalSim live(w.program);
    uint64_t residual = trace->restoreTo(live, position);
    EXPECT_LT(residual, options.checkpointSpacing);
    EXPECT_EQ(live.instsExecuted(), position);

    TraceReplayer replay(trace);
    replay.seek(position);

    ExecRecord lrec, rrec;
    while (true) {
        bool lmore = live.step(lrec);
        bool rmore = replay.step(rrec);
        ASSERT_EQ(lmore, rmore);
        if (!lmore)
            break;
        ASSERT_EQ(lrec.pc, rrec.pc);
        ASSERT_EQ(lrec.nextPc, rrec.nextPc);
        ASSERT_EQ(lrec.memAddr, rrec.memAddr);
        ASSERT_EQ(lrec.taken, rrec.taken);
        ASSERT_EQ(lrec.trivial, rrec.trivial);
    }
}

TEST(Trace, AdaptiveCheckpointLadderStaysBounded)
{
    // The 2M-instruction default run crosses several 64Ki grids, which
    // exercises the thinning ladder: however long the run, at most
    // maxCheckpoints snapshots survive.
    SuiteConfig suite; // default: 2M reference instructions
    Workload w = buildWorkload("gzip", InputSet::Reference, suite);
    auto trace = ExecTrace::record(w.program);
    EXPECT_GE(trace->numCheckpoints(), 1u);
    EXPECT_LE(trace->numCheckpoints(), ExecTrace::maxCheckpoints);
    EXPECT_GE(trace->checkpointSpacing(), uint64_t(64) * 1024);

    // Checkpoints are usable: every one restores to its exact position.
    for (size_t i = 0; i < trace->numCheckpoints(); ++i) {
        const Checkpoint *cp =
            trace->checkpointAtOrBefore(trace->length());
        ASSERT_NE(cp, nullptr);
    }
    FunctionalSim live(w.program);
    uint64_t residual = trace->restoreTo(live, trace->length() - 1);
    EXPECT_LT(residual, trace->checkpointSpacing());
}

// --------------------------------------------------- batched stepping

TEST(Trace, StepBatchMatchesStepForBothSources)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);

    // Per-step reference stream from the live interpreter.
    std::vector<ExecRecord> ref;
    {
        FunctionalSim sim(w.program);
        ExecRecord rec;
        while (sim.step(rec))
            ref.push_back(rec);
    }
    ASSERT_EQ(ref.size(), trace->length());

    // Both sources, several span shapes: single-record, odd, around
    // the 64Ki chunk size, and larger than a whole chunk.
    for (uint64_t batch : {uint64_t(1), uint64_t(7), uint64_t(256),
                           uint64_t(65535), uint64_t(65536),
                           uint64_t(65537), uint64_t(100000)}) {
        SCOPED_TRACE("batch " + std::to_string(batch));
        FunctionalSim live(w.program);
        TraceReplayer replay(trace);
        std::vector<ExecRecord> lbuf(batch), rbuf(batch);

        EXPECT_EQ(live.stepBatch(lbuf.data(), 0), 0u);
        EXPECT_EQ(replay.stepBatch(rbuf.data(), 0), 0u);

        uint64_t at = 0;
        for (;;) {
            uint64_t ln = live.stepBatch(lbuf.data(), batch);
            uint64_t rn = replay.stepBatch(rbuf.data(), batch);
            ASSERT_EQ(ln, rn) << "at instruction " << at;
            if (ln == 0)
                break;
            ASSERT_LE(at + ln, ref.size());
            for (uint64_t i = 0; i < ln; ++i) {
                expectSameRecord(lbuf[i], ref[at + i], at + i);
                expectSameRecord(rbuf[i], ref[at + i], at + i);
            }
            at += ln;
        }
        EXPECT_EQ(at, ref.size());
        EXPECT_TRUE(live.halted());
        EXPECT_TRUE(replay.halted());
        // An exhausted source keeps returning 0.
        EXPECT_EQ(live.stepBatch(lbuf.data(), batch), 0u);
        EXPECT_EQ(replay.stepBatch(rbuf.data(), batch), 0u);
    }
}

TEST(Trace, StepBatchBoundaryFuzz)
{
    // Randomized span shapes biased onto the 64Ki chunk edges, plus
    // interleaved step() calls, n = 0 requests, and a final ask past
    // Halt. Live and replayed sources must stay in lockstep through
    // all of it.
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);
    ASSERT_GT(trace->length(), uint64_t(2) * 65536) <<
        "fuzz needs a multi-chunk trace";

    Rng rng(11);
    constexpr uint64_t kMaxSpan = 70000;
    std::vector<ExecRecord> lbuf(kMaxSpan), rbuf(kMaxSpan);
    FunctionalSim live(w.program);
    TraceReplayer replay(trace);

    uint64_t pos = 0;
    for (;;) {
        uint64_t want;
        switch (rng.nextBelow(5)) {
          case 0: // land exactly on / just past the next chunk edge
            want = (65536 - (pos & 65535)) + rng.nextBelow(3);
            break;
          case 1:
            want = rng.nextBelow(2); // 0 or 1
            break;
          default:
            want = rng.nextBelow(9000);
            break;
        }
        want = std::min(want, kMaxSpan);

        if (rng.nextBelow(4) == 0) {
            // Mid-stream per-step calls must interleave cleanly.
            ExecRecord lrec, rrec;
            bool lmore = live.step(lrec);
            ASSERT_EQ(lmore, replay.step(rrec));
            if (lmore) {
                expectSameRecord(lrec, rrec, pos);
                ++pos;
            }
        }

        uint64_t ln = live.stepBatch(lbuf.data(), want);
        uint64_t rn = replay.stepBatch(rbuf.data(), want);
        ASSERT_EQ(ln, rn) << "at instruction " << pos;
        ASSERT_LE(ln, want);
        for (uint64_t i = 0; i < ln; ++i)
            expectSameRecord(lbuf[i], rbuf[i], pos + i);
        pos += ln;
        if (want > 0 && ln == 0)
            break;
    }
    EXPECT_TRUE(live.halted());
    EXPECT_TRUE(replay.halted());
    EXPECT_EQ(pos, trace->length());
    EXPECT_EQ(replay.instsExecuted(), trace->length());

    // Asking for far more than remains must clamp, not overrun: rerun
    // to just short of Halt, then drain with one oversized request.
    TraceReplayer tail(trace);
    ASSERT_EQ(tail.fastForward(trace->length() - 5),
              trace->length() - 5);
    EXPECT_EQ(tail.stepBatch(rbuf.data(), kMaxSpan), 5u);
    EXPECT_TRUE(tail.halted());
}

TEST(Trace, GenericBatchPathThroughDetailedCoreMatchesTypedPaths)
{
    Workload w = buildWorkload("gzip", InputSet::Reference, tinySuite());
    auto trace = ExecTrace::record(w.program);
    const SimConfig config = architecturalConfig(2);

    FunctionalSim live(w.program);
    OooCore typed_live(config);
    uint64_t done_live = typed_live.run(live, ~0ULL);

    TraceReplayer replay(trace);
    OooCore typed_replay(config);
    uint64_t done_replay = typed_replay.run(replay, ~0ULL);

    // The wrapper defeats the dynamic_cast dispatch, so these go
    // through the generic runSteps loop over the default (per-step)
    // stepBatch fallback.
    FunctionalSim live2(w.program);
    ForwardingSource generic_live(live2);
    OooCore generic_live_core(config);
    uint64_t done_generic_live =
        generic_live_core.run(generic_live, ~0ULL);

    TraceReplayer replay2(trace);
    ForwardingSource generic_replay(replay2);
    OooCore generic_replay_core(config);
    uint64_t done_generic_replay =
        generic_replay_core.run(generic_replay, ~0ULL);

    EXPECT_EQ(done_live, done_replay);
    EXPECT_EQ(done_live, done_generic_live);
    EXPECT_EQ(done_live, done_generic_replay);
    expectSameStats(typed_live.snapshot(), typed_replay.snapshot());
    expectSameStats(typed_live.snapshot(), generic_live_core.snapshot());
    expectSameStats(typed_live.snapshot(),
                    generic_replay_core.snapshot());
}

// ------------------------------------------------------- serialization

TEST(Trace, SerializationRoundTripsBitIdentically)
{
    auto trace = recordGzip();
    const std::string key = "test-key|gzip";

    std::stringstream buffer;
    trace->write(buffer, key);
    auto loaded = ExecTrace::read(buffer, key, trace->program());
    ASSERT_NE(loaded, nullptr);

    EXPECT_EQ(loaded->length(), trace->length());
    EXPECT_EQ(loaded->numCheckpoints(), trace->numCheckpoints());
    EXPECT_EQ(loaded->checkpointSpacing(), trace->checkpointSpacing());
    EXPECT_TRUE(bitEq(loaded->bbef(), trace->bbef()));
    EXPECT_TRUE(bitEq(loaded->bbv(), trace->bbv()));

    TraceReplayer a(trace), b(loaded);
    ExecRecord ra, rb;
    while (true) {
        bool amore = a.step(ra);
        ASSERT_EQ(amore, b.step(rb));
        if (!amore)
            break;
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.nextPc, rb.nextPc);
        ASSERT_EQ(ra.memAddr, rb.memAddr);
        ASSERT_EQ(ra.taken, rb.taken);
        ASSERT_EQ(ra.trivial, rb.trivial);
    }
}

TEST(Trace, ReadRejectsMismatchedKeyVersionAndTruncation)
{
    auto trace = recordGzip();
    std::stringstream buffer;
    trace->write(buffer, "the-right-key");
    const std::string payload = buffer.str();

    {
        std::stringstream in(payload);
        EXPECT_EQ(ExecTrace::read(in, "the-wrong-key",
                                  trace->program()),
                  nullptr);
    }
    {
        // A bumped format version must read as a miss.
        std::string tampered = payload;
        tampered.replace(tampered.find('\n') - 1, 1, "9");
        std::stringstream in(tampered);
        EXPECT_EQ(
            ExecTrace::read(in, "the-right-key", trace->program()),
            nullptr);
    }
    {
        std::stringstream in(
            payload.substr(0, payload.size() - 16));
        EXPECT_EQ(
            ExecTrace::read(in, "the-right-key", trace->program()),
            nullptr);
    }
    {
        // A structurally different program must read as a miss.
        Workload other =
            buildWorkload("mcf", InputSet::Reference, tinySuite());
        std::stringstream in(payload);
        EXPECT_EQ(ExecTrace::read(in, "the-right-key", other.program),
                  nullptr);
    }
}

TEST(Trace, CompressedSpillStaysUnderTheByteBudget)
{
    // The delta/byte-plane v4 encoding's reason to exist: the on-disk
    // footprint must stay at or under 6 bytes per dynamic instruction
    // (the raw SoA rows were 13), embedded checkpoints and profiles
    // included. The same bound is gated on an 8M-instruction trace by
    // `microbench --json`.
    auto trace = recordGzip();
    std::ostringstream os;
    trace->write(os, "budget-key");
    const double bytes_per_inst =
        static_cast<double>(os.str().size()) /
        static_cast<double>(trace->length());
    EXPECT_LE(bytes_per_inst, 6.0);
}

// ---------------------------------------------------------- the store

TEST(TraceStore, DedupsRepeatedRequests)
{
    TraceStore store;
    auto a = store.get("gzip", InputSet::Reference, tinySuite());
    auto b = store.get("gzip", InputSet::Reference, tinySuite());
    EXPECT_EQ(a.get(), b.get());

    TraceCounters ctr = store.counters();
    EXPECT_EQ(ctr.recordings, 1u);
    EXPECT_EQ(ctr.hits, 1u);
    EXPECT_EQ(ctr.instsRecorded, a->length());
    EXPECT_GE(ctr.bytesInMemory, a->footprintBytes());

    // A different input set is a different stream, not a hit.
    auto small = store.get("gzip", InputSet::Small, tinySuite());
    EXPECT_NE(small.get(), a.get());
    EXPECT_NE(small->length(), 0u);
    EXPECT_EQ(store.counters().recordings, 2u);
}

TEST(TraceStore, ConcurrentRequestsRecordOnce)
{
    TraceStore store;
    std::vector<std::shared_ptr<const ExecTrace>> traces(8);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < traces.size(); ++t)
        threads.emplace_back([&, t] {
            traces[t] =
                store.get("gzip", InputSet::Reference, tinySuite());
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(store.counters().recordings, 1u);
    for (size_t t = 1; t < traces.size(); ++t)
        EXPECT_EQ(traces[t].get(), traces[0].get());
}

TEST(TraceStore, ConcurrentReplayersShareOneTrace)
{
    TraceStore store;
    auto trace = store.get("gzip", InputSet::Reference, tinySuite());
    const SimConfig config = architecturalConfig(2);

    OooCore serial(config);
    TraceReplayer serial_replay(trace);
    serial.run(serial_replay, ~0ULL);
    const uint64_t expected_cycles = serial.cycles();

    // Each worker replays the same shared recording to completion on
    // its own core; under TSan this doubles as a data-race check on the
    // read-only trace.
    std::vector<uint64_t> cycles(4, 0);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < cycles.size(); ++t)
        threads.emplace_back([&, t] {
            OooCore core(config);
            TraceReplayer replay(trace);
            core.run(replay, ~0ULL);
            cycles[t] = core.cycles();
        });
    for (std::thread &thread : threads)
        thread.join();
    for (uint64_t c : cycles)
        EXPECT_EQ(c, expected_cycles);
}

TEST(TraceStore, SpillsToDiskAndReloadsBitIdentically)
{
    // Pin the schedule: the exact disk counters below assume no
    // injected faults even under a CI YASIM_FAILPOINTS job.
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_trace_spill");
    TraceStoreOptions options;
    options.cacheDir = scratch.str();

    std::shared_ptr<const ExecTrace> fresh;
    {
        TraceStore warm(options);
        fresh = warm.get("gzip", InputSet::Reference, tinySuite());
        EXPECT_EQ(warm.counters().recordings, 1u);
        EXPECT_EQ(warm.counters().diskWrites, 1u);
    }

    TraceStore cold(options);
    auto loaded = cold.get("gzip", InputSet::Reference, tinySuite());
    EXPECT_EQ(cold.counters().recordings, 0u);
    EXPECT_EQ(cold.counters().diskLoads, 1u);

    EXPECT_EQ(loaded->length(), fresh->length());
    EXPECT_TRUE(bitEq(loaded->bbef(), fresh->bbef()));
    EXPECT_TRUE(bitEq(loaded->bbv(), fresh->bbv()));

    TraceReplayer a(fresh), b(loaded);
    ExecRecord ra, rb;
    while (true) {
        bool amore = a.step(ra);
        ASSERT_EQ(amore, b.step(rb));
        if (!amore)
            break;
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.memAddr, rb.memAddr);
    }
}

TEST(TraceStore, CorruptSpillReadsAsMissAndRerecords)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_trace_corrupt");
    TraceStoreOptions options;
    options.cacheDir = scratch.str();
    {
        TraceStore warm(options);
        warm.get("gzip", InputSet::Reference, tinySuite());
    }
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.is_regular_file()) {
            std::ofstream out(entry.path(), std::ios::trunc);
            out << "not a trace\n";
        }

    TraceStore cold(options);
    auto trace = cold.get("gzip", InputSet::Reference, tinySuite());
    ASSERT_NE(trace, nullptr);
    EXPECT_GT(trace->length(), 0u);
    EXPECT_EQ(cold.counters().recordings, 1u);
    EXPECT_EQ(cold.counters().diskLoads, 0u);
    // The bad spill was quarantined, counted, and re-spilled: the
    // original file name holds a fresh valid artifact, the rot sits in
    // a .corrupt file beside it.
    EXPECT_GE(cold.counters().quarantined, 1u);
    int corrupt_files = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.path().string().ends_with(".corrupt"))
            ++corrupt_files;
    EXPECT_GE(corrupt_files, 1);

    TraceStore again(options);
    auto reloaded = again.get("gzip", InputSet::Reference, tinySuite());
    EXPECT_EQ(again.counters().diskLoads, 1u);
    EXPECT_EQ(reloaded->length(), trace->length());
}

TEST(TraceStore, TruncatedOrBitFlippedSpillsHealByRecompute)
{
    // Damage sweep over the compressed spill, mirroring the framed
    // fuzz in tests/test_service.cc: whatever byte we truncate at or
    // flip, the store must treat the file as a miss and recompute a
    // bit-identical trace — never crash, never return wrong records.
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_trace_damage");
    TraceStoreOptions options;
    options.cacheDir = scratch.str();

    std::shared_ptr<const ExecTrace> fresh;
    {
        TraceStore warm(options);
        fresh = warm.get("gzip", InputSet::Reference, tinySuite());
    }
    std::string spill_path;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.is_regular_file())
            spill_path = entry.path().string();
    ASSERT_FALSE(spill_path.empty());
    const std::string good = slurp(spill_path);
    ASSERT_FALSE(good.empty());

    auto expect_heals = [&](const std::string &damaged) {
        dump(spill_path, damaged);
        TraceStore cold(options);
        auto healed =
            cold.get("gzip", InputSet::Reference, tinySuite());
        ASSERT_NE(healed, nullptr);
        EXPECT_EQ(cold.counters().diskLoads, 0u);
        EXPECT_EQ(cold.counters().recordings, 1u);
        EXPECT_EQ(healed->length(), fresh->length());
        EXPECT_TRUE(bitEq(healed->bbef(), fresh->bbef()));
        EXPECT_TRUE(bitEq(healed->bbv(), fresh->bbv()));
        // Healing re-spilled a valid artifact; drop quarantines so
        // the next damage pass starts from a clean directory.
        for (const fs::directory_entry &entry :
             fs::directory_iterator(scratch.str()))
            if (entry.path().string().ends_with(".corrupt"))
                fs::remove(entry.path());
    };

    for (size_t keep :
         {size_t(0), size_t(1), good.size() / 4, good.size() / 2,
          good.size() - 1}) {
        SCOPED_TRACE("truncated to " + std::to_string(keep));
        expect_heals(good.substr(0, keep));
    }
    const size_t stride = good.size() / 16 + 1;
    for (size_t at = 0; at < good.size(); at += stride) {
        SCOPED_TRACE("bit flip at " + std::to_string(at));
        std::string bad = good;
        bad[at] ^= 0x10;
        expect_heals(bad);
    }
}

TEST(TraceStore, StaleVersionSpillIsAMissNotCorruption)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_trace_stale");
    TraceStoreOptions options;
    options.cacheDir = scratch.str();
    {
        TraceStore warm(options);
        warm.get("gzip", InputSet::Reference, tinySuite());
    }
    std::string spill_path;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        if (entry.is_regular_file())
            spill_path = entry.path().string();
    ASSERT_FALSE(spill_path.empty());

    // Re-frame the intact payload as the previous format generation —
    // exactly what a spill directory holds across a version bump.
    std::string payload, error;
    ASSERT_TRUE(decodeFrame(slurp(spill_path), "yasim-trace",
                            kTraceFormatVersion, payload, error))
        << error;
    ASSERT_TRUE(writeArtifact(spill_path, "yasim-trace",
                              kTraceFormatVersion - 1, payload)
                    .ok);

    TraceStore cold(options);
    auto trace = cold.get("gzip", InputSet::Reference, tinySuite());
    ASSERT_NE(trace, nullptr);
    TraceCounters ctr = cold.counters();
    EXPECT_EQ(ctr.versionMisses, 1u);
    EXPECT_EQ(ctr.quarantined, 0u);
    EXPECT_EQ(ctr.diskLoads, 0u);
    EXPECT_EQ(ctr.recordings, 1u);
    // The stale file was deleted, not quarantined, and the healed
    // spill took its place.
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        EXPECT_FALSE(entry.path().string().ends_with(".corrupt"))
            << entry.path();

    TraceStore again(options);
    auto reloaded =
        again.get("gzip", InputSet::Reference, tinySuite());
    ASSERT_NE(reloaded, nullptr);
    EXPECT_EQ(again.counters().diskLoads, 1u);
    EXPECT_EQ(again.counters().versionMisses, 0u);
    EXPECT_EQ(reloaded->length(), trace->length());
}

TEST(TraceStore, SpillBudgetBoundsTheDirectory)
{
    failpoint::ScopedSchedule off("");
    ScratchDir scratch("yasim_trace_budget");
    TraceStoreOptions options;
    options.cacheDir = scratch.str();
    options.cacheBudgetBytes = 1; // only the newest spill may survive

    TraceStore store(options);
    store.get("gzip", InputSet::Reference, tinySuite());
    store.get("mcf", InputSet::Reference, tinySuite());
    EXPECT_GE(store.counters().budgetEvictions, 1u);

    int files = 0;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(scratch.str()))
        files += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1);
}

TEST(TraceStore, EvictsLeastRecentlyUsedPastByteBudget)
{
    TraceStoreOptions options;
    options.maxBytes = 1; // every insertion is over budget
    TraceStore store(options);

    // While the caller still holds the trace it cannot be evicted.
    auto held = store.get("gzip", InputSet::Reference, tinySuite());
    store.get("mcf", InputSet::Reference, tinySuite());
    EXPECT_EQ(store.counters().evictions, 0u);

    // Once released, the next insertion pushes it out.
    held.reset();
    store.get("art", InputSet::Reference, tinySuite());
    EXPECT_GE(store.counters().evictions, 1u);
    auto again = store.get("gzip", InputSet::Reference, tinySuite());
    EXPECT_EQ(store.counters().recordings, 4u); // gzip recorded twice
}

// ------------------------------------------- techniques and the engine

TEST(TraceTechniques, AllFamiliesAreBitIdenticalUnderReplay)
{
    DirectService service;
    TechniqueContext live_ctx =
        TechniqueContext::make("gzip", tinySuite(), service);
    ASSERT_EQ(live_ctx.traces, nullptr);

    TraceStore store;
    TechniqueContext replay_ctx = live_ctx;
    replay_ctx.traces = &store;

    std::vector<TechniquePtr> families = {
        std::make_shared<FullReference>(),
        std::make_shared<ReducedInput>(InputSet::Small),
        std::make_shared<RunZ>(30),
        std::make_shared<FfRunZ>(50, 10),
        std::make_shared<FfWuRunZ>(40, 10, 10),
        std::make_shared<Smarts>(1000, 2000),
        std::make_shared<RandomSampling>(20, 500, 500, 7),
        std::make_shared<SimPoint>(10, 10, 1, "multiple 10M"),
    };
    for (int idx : {1, 3}) {
        const SimConfig config = architecturalConfig(idx);
        for (const TechniquePtr &technique : families) {
            TechniqueResult live =
                technique->run(live_ctx, config);
            TechniqueResult replay =
                technique->run(replay_ctx, config);
            SCOPED_TRACE(technique->name() + " on config " +
                         std::to_string(idx));
            expectBitIdentical(live, replay);
        }
    }
    // Reference + reduced streams were each recorded exactly once and
    // shared across every technique and configuration that needed them.
    EXPECT_EQ(store.counters().recordings, 2u);
}

TEST(TraceEngine, ConfigurationSweepInterpretsOnce)
{
    ExperimentEngine engine; // traces on by default
    ASSERT_NE(engine.traceStore(), nullptr);
    TechniqueContext ctx = engine.context("gzip", tinySuite());

    std::vector<TechniquePtr> techniques = {
        std::make_shared<FfRunZ>(50, 10),
        std::make_shared<Smarts>(1000, 2000),
    };
    engine.prefetch(ctx, techniques, architecturalConfigs());

    // However many techniques and configurations ran, gzip's reference
    // input was functionally interpreted exactly once.
    TraceCounters ctr = engine.traceStore()->counters();
    EXPECT_EQ(ctr.recordings, 1u);
    EXPECT_GE(ctr.hits + ctr.inflightJoins, 1u);
    EXPECT_EQ(engine.counters().refLengthFromTrace, 1u);
}

TEST(TraceEngine, TracedAndTracelessEnginesAgreeBitForBit)
{
    ExperimentEngine traced;
    EngineOptions no_traces;
    no_traces.traces = false;
    ExperimentEngine traceless(no_traces);
    EXPECT_EQ(traceless.traceStore(), nullptr);

    Smarts smarts(1000, 2000);
    const SimConfig config = architecturalConfig(2);
    TechniqueResult a =
        traced.run(smarts, traced.context("gzip", tinySuite()), config);
    TechniqueResult b = traceless.run(
        smarts, traceless.context("gzip", tinySuite()), config);
    expectBitIdentical(a, b);
}

} // namespace
} // namespace yasim
