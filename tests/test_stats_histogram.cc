/** @file Tests for the fixed-bin histogram. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace yasim {
namespace {

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(0.0, 0.03, 10); // Figure 5's shape
    h.add(0.01);                // bin 0
    h.add(0.05);                // bin 1
    h.add(0.29);                // bin 9
    h.add(0.31);                // overflow
    h.add(5.0);                 // overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 0.1, 2);
    h.add(0.05);
    h.add(0.05);
    h.add(0.15);
    h.add(0.95);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.25); // overflow index
}

TEST(Histogram, BoundaryGoesToUpperBin)
{
    Histogram h(0.0, 0.03, 10);
    h.add(0.03); // exactly on the 0/1 boundary -> bin 1
    EXPECT_EQ(h.binCount(1), 1u);
    h.add(0.30); // exactly at the top -> overflow
    EXPECT_EQ(h.overflowCount(), 1u);
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram h(0.0, 0.03, 10);
    h.add(-0.5);
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST(Histogram, PaperStyleLabels)
{
    Histogram h(0.0, 0.03, 10);
    EXPECT_EQ(h.label(0), "0% to 3%");
    EXPECT_EQ(h.label(1), "3% to 6%");
    EXPECT_EQ(h.label(9), "27% to 30%");
    EXPECT_EQ(h.label(10), "> 30%");
}

TEST(Histogram, EmptyFractionsAreZero)
{
    Histogram h(0.0, 1.0, 3);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_EQ(h.total(), 0u);
}

} // namespace
} // namespace yasim
