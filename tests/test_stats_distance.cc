/** @file Tests for distances, ranks, and normalizations. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distance.hh"

namespace yasim {
namespace {

TEST(Distance, Euclidean)
{
    EXPECT_DOUBLE_EQ(euclideanDistance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(euclideanDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Distance, Manhattan)
{
    EXPECT_DOUBLE_EQ(manhattanDistance({0, 0}, {3, -4}), 7.0);
    EXPECT_DOUBLE_EQ(manhattanDistance({5}, {5}), 0.0);
}

TEST(Distance, TriangleInequalityHolds)
{
    std::vector<double> a = {1, 2, 3}, b = {4, 0, -1}, c = {2, 2, 2};
    EXPECT_LE(euclideanDistance(a, c),
              euclideanDistance(a, b) + euclideanDistance(b, c) + 1e-12);
    EXPECT_LE(manhattanDistance(a, c),
              manhattanDistance(a, b) + manhattanDistance(b, c) + 1e-12);
}

TEST(Ranks, LargestMagnitudeGetsRankOne)
{
    std::vector<int> ranks = rankByMagnitude({0.5, -3.0, 1.0});
    EXPECT_EQ(ranks[0], 3); // |0.5| smallest
    EXPECT_EQ(ranks[1], 1); // |-3| largest
    EXPECT_EQ(ranks[2], 2);
}

TEST(Ranks, TiesBreakByIndex)
{
    std::vector<int> ranks = rankByMagnitude({2.0, -2.0, 2.0});
    EXPECT_EQ(ranks[0], 1);
    EXPECT_EQ(ranks[1], 2);
    EXPECT_EQ(ranks[2], 3);
}

TEST(Ranks, EveryRankAppearsOnce)
{
    std::vector<double> effects;
    for (int i = 0; i < 43; ++i)
        effects.push_back(std::sin(i * 1.7) * (i + 1));
    std::vector<int> ranks = rankByMagnitude(effects);
    std::vector<bool> seen(44, false);
    for (int r : ranks) {
        ASSERT_GE(r, 1);
        ASSERT_LE(r, 43);
        EXPECT_FALSE(seen[static_cast<size_t>(r)]);
        seen[static_cast<size_t>(r)] = true;
    }
}

TEST(Ranks, MaxRankDistanceClosedForm)
{
    // 43 out-of-phase ranks: sum of (44 - 2i)^2 = 26488, sqrt = 162.75.
    EXPECT_NEAR(maxRankDistance(43), std::sqrt(26488.0), 1e-9);
    // Degenerate and small cases.
    EXPECT_DOUBLE_EQ(maxRankDistance(1), 0.0);
    EXPECT_NEAR(maxRankDistance(2), std::sqrt(2.0), 1e-12);
}

TEST(Ranks, MaxRankDistanceIsAchieved)
{
    const size_t n = 43;
    std::vector<int> fwd(n), rev(n);
    for (size_t i = 0; i < n; ++i) {
        fwd[i] = static_cast<int>(i) + 1;
        rev[i] = static_cast<int>(n - i);
    }
    // normalizedRankDistance scales exactly to 100 for these.
    EXPECT_NEAR(normalizedRankDistance(fwd, rev), 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(normalizedRankDistance(fwd, fwd), 0.0);
}

TEST(Normalize, DividesByReference)
{
    std::vector<double> v = {2.0, 10.0};
    std::vector<double> ref = {4.0, 10.0};
    std::vector<double> out = normalizeBy(v, ref);
    EXPECT_DOUBLE_EQ(out[0], 0.5);
    EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(Normalize, ZeroReferenceGuard)
{
    std::vector<double> out = normalizeBy({0.0, 5.0}, {0.0, 0.0});
    EXPECT_DOUBLE_EQ(out[0], 1.0); // 0/0 agrees
    EXPECT_GT(out[1], 1e8);        // 5/0 flagged huge
}

/** Property sweep: normalized rank distance stays within [0, 100]. */
class RankDistanceSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RankDistanceSweep, Bounded)
{
    const int n = GetParam();
    std::vector<int> a(static_cast<size_t>(n)), b(a);
    for (int i = 0; i < n; ++i) {
        a[static_cast<size_t>(i)] = i + 1;
        // A deterministic permutation.
        b[static_cast<size_t>(i)] = (i * 7 % n) + 1;
    }
    double d = normalizedRankDistance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankDistanceSweep,
                         ::testing::Values(2, 3, 5, 10, 43, 101));

} // namespace
} // namespace yasim
