/** @file Tests for summary statistics and confidence intervals. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hh"

namespace yasim {
namespace {

TEST(Summary, MeanAndVariance)
{
    std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(sampleVariance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(sampleStdev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SingleSampleHasZeroVariance)
{
    std::vector<double> xs = {3.0};
    EXPECT_DOUBLE_EQ(sampleVariance(xs), 0.0);
}

TEST(Summary, MinMax)
{
    std::vector<double> xs = {3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.0);
}

TEST(Summary, CoefficientOfVariation)
{
    std::vector<double> xs = {10.0, 10.0, 10.0};
    EXPECT_DOUBLE_EQ(coefficientOfVariation(xs), 0.0);
    std::vector<double> ys = {5.0, 15.0};
    EXPECT_NEAR(coefficientOfVariation(ys),
                std::sqrt(50.0) / 10.0, 1e-12);
}

TEST(Summary, NormalCriticalValues)
{
    // Classic two-sided z values.
    EXPECT_NEAR(normalCriticalValue(0.95), 1.95996, 1e-4);
    EXPECT_NEAR(normalCriticalValue(0.99), 2.57583, 1e-4);
    EXPECT_NEAR(normalCriticalValue(0.997), 2.96774, 1e-3);
    EXPECT_NEAR(normalCriticalValue(0.6827), 1.0, 1e-3);
}

TEST(Summary, CriticalValueMonotoneInConfidence)
{
    double prev = 0.0;
    for (double c : {0.5, 0.8, 0.9, 0.95, 0.99, 0.999}) {
        double z = normalCriticalValue(c);
        EXPECT_GT(z, prev);
        prev = z;
    }
}

TEST(Summary, RequiredSamplesSmartsRule)
{
    // n >= (z * cv / eps)^2; paper config: 99.7%, +/-3%.
    double z = normalCriticalValue(0.997);
    double cv = 0.5;
    size_t n = requiredSamples(cv, 0.997, 0.03);
    double expect = (z * cv / 0.03) * (z * cv / 0.03);
    EXPECT_EQ(n, static_cast<size_t>(std::ceil(expect)));
    // Zero variation needs essentially no samples.
    EXPECT_EQ(requiredSamples(0.0, 0.997, 0.03), 0u);
}

TEST(Summary, RelativeHalfWidthShrinksWithSamples)
{
    std::vector<double> small_set, large_set;
    for (int i = 0; i < 10; ++i)
        small_set.push_back(i % 2 ? 9.0 : 11.0);
    for (int i = 0; i < 1000; ++i)
        large_set.push_back(i % 2 ? 9.0 : 11.0);
    double wide = relativeConfidenceHalfWidth(small_set, 0.95);
    double narrow = relativeConfidenceHalfWidth(large_set, 0.95);
    EXPECT_GT(wide, narrow);
    EXPECT_GT(narrow, 0.0);
}

/** Parameterized property: requiredSamples is monotone in cv. */
class RequiredSamplesSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RequiredSamplesSweep, MonotoneInCv)
{
    double cv = GetParam();
    size_t n1 = requiredSamples(cv, 0.997, 0.03);
    size_t n2 = requiredSamples(cv * 2.0, 0.997, 0.03);
    EXPECT_GE(n2, n1 * 3); // quadratic: doubling cv ~ 4x samples
}

INSTANTIATE_TEST_SUITE_P(CvValues, RequiredSamplesSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0, 2.0));

} // namespace
} // namespace yasim
