/** @file Tests for the characterization framework (the core library). */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

#include "core/arch_characterization.hh"
#include "core/config_dependence.hh"
#include "core/decision_tree.hh"
#include "core/enhancement_pb.hh"
#include "core/enhancement_study.hh"
#include "core/pb_characterization.hh"
#include "core/profile_characterization.hh"
#include "core/survey.hh"
#include "core/svat_analysis.hh"
#include "techniques/full_reference.hh"
#include "techniques/smarts.hh"
#include "techniques/truncated.hh"

namespace yasim {
namespace {

TechniqueContext
smallContext(const std::string &benchmark = "gzip")
{
    SuiteConfig suite;
    suite.referenceInstructions = 200'000;
    static DirectService service;
    return TechniqueContext::make(benchmark, suite, service);
}

TEST(PbFactors, FortyThreeNamedFactors)
{
    EXPECT_EQ(numPbFactors(), 43u);
    std::set<std::string> names;
    for (const PbFactor &factor : pbFactors()) {
        EXPECT_FALSE(factor.name.empty());
        names.insert(factor.name);
    }
    EXPECT_EQ(names.size(), 43u); // all distinct
}

TEST(PbFactors, HighAndLowProduceDifferentConfigs)
{
    for (const PbFactor &factor : pbFactors()) {
        SimConfig lo, hi;
        factor.apply(lo, false);
        factor.apply(hi, true);
        // At least one knob must differ; compare a serialized view.
        bool differs =
            std::memcmp(&lo.core, &hi.core, sizeof(lo.core)) != 0 ||
            std::memcmp(&lo.bp, &hi.bp, sizeof(lo.bp)) != 0 ||
            std::memcmp(&lo.mem, &hi.mem, sizeof(lo.mem)) != 0;
        EXPECT_TRUE(differs) << factor.name;
    }
}

TEST(ArchConfigs, FourPresetsMatchTableThree)
{
    auto configs = architecturalConfigs();
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].core.issueWidth, 4u);
    EXPECT_EQ(configs[3].core.issueWidth, 8u);
    EXPECT_EQ(configs[0].core.robEntries, 32u);
    EXPECT_EQ(configs[3].core.robEntries, 256u);
    EXPECT_EQ(configs[0].mem.memLatencyFirst, 150u);
    EXPECT_EQ(configs[2].mem.memLatencyFirst, 300u);
    EXPECT_EQ(configs[1].bp.bhtEntries, 8192u);
}

TEST(ArchConfigs, EnvelopeIs48Configs)
{
    EXPECT_EQ(envelopeConfigs().size(), 44u + 4u);
}

TEST(PbCharacterization, ReferenceDistanceToItselfIsZero)
{
    TechniqueContext ctx = smallContext();
    // A 7-factor toy design keeps this test fast while exercising the
    // whole pipeline; the response only sees the first 7 real factors.
    PbDesign design = PbDesign::forFactors(numPbFactors(), false);
    FullReference reference;
    PbOutcome ref = runPbDesign(reference, ctx, design);
    EXPECT_EQ(ref.responses.size(), design.numRuns());
    EXPECT_EQ(ref.ranks.size(), 43u);
    EXPECT_DOUBLE_EQ(pbDistance(ref, ref), 0.0);
    EXPECT_GT(ref.workUnits, 0.0);
}

TEST(PbCharacterization, DistanceDifferenceSeriesShape)
{
    PbOutcome a, b, ref;
    a.ranks = {1, 2, 3};
    b.ranks = {3, 2, 1};
    ref.ranks = {1, 2, 3};
    auto series = pbDistanceDifference(a, b, ref);
    ASSERT_EQ(series.size(), 3u);
    // a == ref so the difference is -dist(b) at every prefix.
    EXPECT_LT(series[0], 0.0);
    EXPECT_LT(series[2], 0.0);
}

TEST(ProfileCharacterization, IdenticalProfilesSimilar)
{
    TechniqueResult a, b;
    a.technique = b.technique = "x";
    a.bbef = b.bbef = {100, 300, 50};
    a.bbv = b.bbv = {1000, 9000, 200};
    ProfileComparison cmp = compareProfiles(a, b);
    EXPECT_TRUE(cmp.bbef.similar);
    EXPECT_TRUE(cmp.bbv.similar);
    EXPECT_NEAR(cmp.bbv.statistic, 0.0, 1e-9);
}

TEST(ProfileCharacterization, SkewedProfileDissimilar)
{
    TechniqueResult ref, tech;
    ref.bbef = {1000, 1000, 1000};
    ref.bbv = {10000, 10000, 10000};
    tech.bbef = {3000, 0, 0};
    tech.bbv = {30000, 0, 0};
    ProfileComparison cmp = compareProfiles(tech, ref);
    EXPECT_FALSE(cmp.bbv.similar);
    EXPECT_GT(cmp.bbv.statistic, cmp.bbv.critical);
}

TEST(ArchCharacterization, ZeroDistanceForIdenticalMetrics)
{
    TechniqueResult ref;
    ref.metrics = {1.5, 0.95, 0.9, 0.8};
    EXPECT_DOUBLE_EQ(archDistance(ref, ref), 0.0);
    TechniqueResult off;
    off.metrics = {3.0, 0.95, 0.9, 0.8}; // IPC doubled
    EXPECT_NEAR(archDistance(off, ref), 1.0, 1e-12);
}

TEST(ArchCharacterization, AveragesOverConfigs)
{
    TechniqueResult ref;
    ref.metrics = {1.0, 1.0, 1.0, 1.0};
    TechniqueResult t1 = ref, t2 = ref;
    t2.metrics[0] = 2.0;
    double avg = archDistanceOverConfigs({t1, t2}, {ref, ref});
    EXPECT_NEAR(avg, 0.5, 1e-12);
}

TEST(Svat, ReferenceLikeTechniqueNearOrigin)
{
    TechniqueContext ctx = smallContext();
    std::vector<SimConfig> configs = {architecturalConfig(1),
                                      architecturalConfig(2)};
    std::vector<TechniquePtr> techniques = {
        std::make_shared<RunZ>(10000.0), // the whole program: exact
        std::make_shared<RunZ>(500.0),   // 5% prefix: cheap, wrong
    };
    auto points = svatAnalysis(ctx, techniques, configs);
    ASSERT_EQ(points.size(), 2u);
    // Whole-program Run Z reproduces the reference exactly.
    EXPECT_NEAR(points[0].cpiDistance, 0.0, 1e-9);
    EXPECT_NEAR(points[0].speedPct, 100.0, 10.0);
    // The 5% prefix is much faster and (for gzip) less accurate.
    EXPECT_LT(points[1].speedPct, 25.0);
    EXPECT_GT(points[1].cpiDistance, points[0].cpiDistance);
}

TEST(ConfigDependence, PerfectTechniqueWithin3Pct)
{
    TechniqueContext ctx = smallContext();
    std::vector<SimConfig> configs = {architecturalConfig(1),
                                      architecturalConfig(2),
                                      architecturalConfig(3)};
    std::vector<double> ref_cpis = referenceCpis(ctx, configs);
    ASSERT_EQ(ref_cpis.size(), 3u);
    RunZ whole(10000.0);
    ConfigDependence dep =
        configDependence(whole, ctx, configs, ref_cpis);
    EXPECT_DOUBLE_EQ(dep.within3Pct(), 1.0);
    EXPECT_DOUBLE_EQ(dep.errorConsistency(), 1.0);
}

TEST(ConfigDependence, HistogramBucketsErrors)
{
    TechniqueContext ctx = smallContext("mcf");
    std::vector<SimConfig> configs = {architecturalConfig(1),
                                      architecturalConfig(4)};
    std::vector<double> ref_cpis = referenceCpis(ctx, configs);
    RunZ prefix(500.0); // mcf's prefix is wildly unrepresentative
    ConfigDependence dep =
        configDependence(prefix, ctx, configs, ref_cpis);
    EXPECT_EQ(dep.errorHistogram.total(), 2u);
    EXPECT_LT(dep.within3Pct(), 1.0);
}

TEST(Enhancement, NlpSpeedsUpStreamingReference)
{
    // Needs a scale where art's streaming arrays exceed the L1.
    SuiteConfig suite;
    suite.referenceInstructions = 1'000'000;
    static DirectService service;
    TechniqueContext ctx = TechniqueContext::make("art", suite, service);
    SimConfig cfg = architecturalConfig(1);
    double speedup =
        referenceSpeedup(ctx, cfg, Enhancement::NextLinePrefetch);
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 3.0);
}

TEST(Enhancement, TcSpeedsUpGcc)
{
    TechniqueContext ctx = smallContext("gcc");
    SimConfig cfg = architecturalConfig(1);
    double speedup =
        referenceSpeedup(ctx, cfg, Enhancement::TrivialComputation);
    EXPECT_GT(speedup, 1.0);
}

TEST(Enhancement, ImpactErrorIsDeltaOfSpeedups)
{
    TechniqueContext ctx = smallContext("gzip");
    SimConfig cfg = architecturalConfig(1);
    double ref =
        referenceSpeedup(ctx, cfg, Enhancement::NextLinePrefetch);
    RunZ whole(10000.0);
    EnhancementImpact impact = evaluateEnhancement(
        whole, ctx, cfg, Enhancement::NextLinePrefetch, ref);
    EXPECT_NEAR(impact.speedupError(), 0.0, 1e-9);
}

TEST(Enhancement, ConfigToggles)
{
    SimConfig base = architecturalConfig(1);
    SimConfig tc = withEnhancement(base, Enhancement::TrivialComputation);
    SimConfig nlp = withEnhancement(base, Enhancement::NextLinePrefetch);
    EXPECT_TRUE(tc.core.trivialComputation);
    EXPECT_FALSE(base.core.trivialComputation);
    EXPECT_TRUE(nlp.mem.nextLinePrefetch);
    EXPECT_NE(tc.name, base.name);
}

TEST(EnhancementPb, NlpRanksAmongBottlenecksOnMcf)
{
    // The Yi03 application: the enhancement joins the design as factor
    // 44. On memory-bound mcf, NLP's effect must be negative (it
    // reduces CPI) and rank well above the noise tail.
    SuiteConfig suite;
    suite.referenceInstructions = 150'000;
    static DirectService service;
    TechniqueContext ctx = TechniqueContext::make("mcf", suite, service);
    FullReference reference;
    EnhancementPbOutcome out = rankEnhancementEffect(
        reference, ctx, Enhancement::NextLinePrefetch);
    EXPECT_EQ(out.effects.size(), 44u);
    EXPECT_EQ(out.ranks.size(), 44u);
    EXPECT_LT(out.enhancementEffect, 0.0);
    EXPECT_LE(out.enhancementRank, 20);
    EXPECT_EQ(out.ranks.back(), out.enhancementRank);
    EXPECT_GT(out.workUnits, 0.0);
}

TEST(DecisionTree, PaperRankings)
{
    DecisionTree tree;
    const CriterionRanking &acc =
        tree.recommend(SelectionGoal::Accuracy);
    ASSERT_EQ(acc.ranking.size(), 6u);
    EXPECT_EQ(acc.ranking[0], "SMARTS");
    EXPECT_EQ(acc.ranking[1], "SimPoint");
    EXPECT_EQ(acc.ranking.back(), "reduced");

    const CriterionRanking &svat =
        tree.recommend(SelectionGoal::SpeedAccuracyTradeoff);
    EXPECT_EQ(svat.ranking[0], "SimPoint");
    EXPECT_EQ(svat.ranking[1], "SMARTS");

    const CriterionRanking &complexity =
        tree.recommend(SelectionGoal::LowComplexityToUse);
    EXPECT_EQ(complexity.ranking[0], "reduced");
    EXPECT_EQ(complexity.ranking.back(), "SMARTS");

    const CriterionRanking &cost =
        tree.recommend(SelectionGoal::LowCostToGenerate);
    EXPECT_EQ(cost.ranking[0], "SimPoint");
}

TEST(DecisionTree, PrintsAllGoals)
{
    DecisionTree tree;
    std::ostringstream os;
    tree.print(os);
    std::string out = os.str();
    for (SelectionGoal goal : allSelectionGoals())
        EXPECT_NE(out.find(selectionGoalName(goal)), std::string::npos);
    EXPECT_NE(out.find("Technical Factors"), std::string::npos);
    EXPECT_NE(out.find("Practical Factors"), std::string::npos);
}

TEST(Survey, PrevalencePercentagesMatchPaper)
{
    const auto &survey = prevalenceSurvey();
    double ff_run = 0, run = 0, reduced = 0, complete = 0;
    for (const SurveyEntry &e : survey) {
        if (e.technique == "FF X + Run Z")
            ff_run = e.percentOfKnown;
        if (e.technique == "Run Z")
            run = e.percentOfKnown;
        if (e.technique == "reduced input sets")
            reduced = e.percentOfKnown;
        if (e.technique == "run to completion")
            complete = e.percentOfKnown;
    }
    EXPECT_DOUBLE_EQ(ff_run, 27.3);
    EXPECT_DOUBLE_EQ(run, 23.1);
    EXPECT_DOUBLE_EQ(reduced, 18.5);
    EXPECT_DOUBLE_EQ(complete, 17.8);
    // The four most prevalent techniques cover almost 90%.
    EXPECT_NEAR(ff_run + run + reduced + complete, 86.7, 0.1);
    EXPECT_DOUBLE_EQ(adoptionTrend().beforeSimPointPct, 68.9);
    EXPECT_DOUBLE_EQ(adoptionTrend().afterSimPointPct, 82.1);
}

} // namespace
} // namespace yasim
